(* Tests for the simulated OS: scheduling, fork/exec/exit/wait, pipes,
   ptys, sockets between processes, suspension, and the VFS. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Tiny test programs *)

(* Counts to [target], burning simulated CPU; exits with code 0 and leaves
   its count in a file. *)
module Counter = struct
  type state = { n : int; target : int; out : string }

  let name = "test:counter"

  let encode w st =
    Util.Codec.Writer.uvarint w st.n;
    Util.Codec.Writer.uvarint w st.target;
    Util.Codec.Writer.string w st.out

  let decode r =
    let n = Util.Codec.Reader.uvarint r in
    let target = Util.Codec.Reader.uvarint r in
    let out = Util.Codec.Reader.string r in
    { n; target; out }

  let init ~argv =
    match argv with
    | [ target; out ] -> { n = 0; target = int_of_string target; out }
    | _ -> { n = 0; target = 10; out = "/tmp/count" }

  let step (ctx : Simos.Program.ctx) st =
    if st.n < st.target then Simos.Program.Compute ({ st with n = st.n + 1 }, 1e-3)
    else begin
      (match ctx.open_file st.out with
      | Ok fd ->
        ignore (ctx.write_fd fd (string_of_int st.n));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
end

(* Forks a child that exits with code 7; parent waits and records the
   reaped (pid, code). *)
module Forker = struct
  type state = Start | Parent | Child | Waiting

  let name = "test:forker"

  let encode w = function
    | Start -> Util.Codec.Writer.u8 w 0
    | Parent -> Util.Codec.Writer.u8 w 1
    | Child -> Util.Codec.Writer.u8 w 2
    | Waiting -> Util.Codec.Writer.u8 w 3

  let decode r =
    match Util.Codec.Reader.u8 r with
    | 0 -> Start
    | 1 -> Parent
    | 2 -> Child
    | _ -> Waiting

  let init ~argv:_ = Start

  let reaped : (int * int) option ref = ref None

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Start -> Simos.Program.Fork { parent = Parent; child = Child }
    | Child -> Simos.Program.Exit 7
    | Parent | Waiting -> (
      match ctx.wait_child () with
      | `Child (pid, code) ->
        reaped := Some (pid, code);
        Simos.Program.Exit 0
      | `None -> Simos.Program.Block (Waiting, Simos.Program.Child)
      | `No_children -> Simos.Program.Exit 1)
end

(* Execs into test:counter. *)
module Execer = struct
  type state = unit

  let name = "test:execer"
  let encode _ () = ()
  let decode _ = ()
  let init ~argv:_ = ()

  let step (_ : Simos.Program.ctx) () =
    Simos.Program.Exec { st = (); prog = "test:counter"; argv = [ "3"; "/tmp/exec-count" ] }
end

(* Echo server: accepts one connection, echoes until EOF. *)
module Echo_server = struct
  type state =
    | Boot of int  (* port *)
    | Accepting of int  (* listen fd *)
    | Echoing of int  (* conn fd *)

  let name = "test:echo-server"

  let encode w = function
    | Boot p ->
      Util.Codec.Writer.u8 w 0;
      Util.Codec.Writer.uvarint w p
    | Accepting fd ->
      Util.Codec.Writer.u8 w 1;
      Util.Codec.Writer.uvarint w fd
    | Echoing fd ->
      Util.Codec.Writer.u8 w 2;
      Util.Codec.Writer.uvarint w fd

  let decode r =
    match Util.Codec.Reader.u8 r with
    | 0 -> Boot (Util.Codec.Reader.uvarint r)
    | 1 -> Accepting (Util.Codec.Reader.uvarint r)
    | _ -> Echoing (Util.Codec.Reader.uvarint r)

  let init ~argv = match argv with [ p ] -> Boot (int_of_string p) | _ -> Boot 7000

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot port ->
      let fd = ctx.socket () in
      (match ctx.bind fd ~port with Ok _ -> () | Error e -> failwith (Simos.Errno.to_string e));
      (match ctx.listen fd ~backlog:4 with Ok () -> () | Error e -> failwith (Simos.Errno.to_string e));
      Simos.Program.Block (Accepting fd, Simos.Program.Readable fd)
    | Accepting lfd -> (
      match ctx.accept lfd with
      | Some conn ->
        ctx.close_fd lfd;
        Simos.Program.Block (Echoing conn, Simos.Program.Readable conn)
      | None -> Simos.Program.Block (Accepting lfd, Simos.Program.Readable lfd))
    | Echoing fd -> (
      match ctx.read_fd fd ~max:4096 with
      | `Data d ->
        ignore (ctx.write_fd fd d);
        Simos.Program.Block (Echoing fd, Simos.Program.Readable fd)
      | `Eof ->
        ctx.close_fd fd;
        Simos.Program.Exit 0
      | `Would_block -> Simos.Program.Block (Echoing fd, Simos.Program.Readable fd)
      | `Err _ -> Simos.Program.Exit 1)
end

(* Client: connects to host:port, sends a message, expects the echo, writes
   it to a file, closes. *)
module Echo_client = struct
  type state =
    | Boot of { host : int; port : int; msg : string; out : string }
    | Connecting of { fd : int; msg : string; out : string }
    | Reading of { fd : int; expect : int; got : string; out : string }

  let name = "test:echo-client"

  let encode w = function
    | Boot { host; port; msg; out } ->
      Util.Codec.Writer.u8 w 0;
      Util.Codec.Writer.uvarint w host;
      Util.Codec.Writer.uvarint w port;
      Util.Codec.Writer.string w msg;
      Util.Codec.Writer.string w out
    | Connecting { fd; msg; out } ->
      Util.Codec.Writer.u8 w 1;
      Util.Codec.Writer.uvarint w fd;
      Util.Codec.Writer.string w msg;
      Util.Codec.Writer.string w out
    | Reading { fd; expect; got; out } ->
      Util.Codec.Writer.u8 w 2;
      Util.Codec.Writer.uvarint w fd;
      Util.Codec.Writer.uvarint w expect;
      Util.Codec.Writer.string w got;
      Util.Codec.Writer.string w out

  let decode r =
    match Util.Codec.Reader.u8 r with
    | 0 ->
      let host = Util.Codec.Reader.uvarint r in
      let port = Util.Codec.Reader.uvarint r in
      let msg = Util.Codec.Reader.string r in
      let out = Util.Codec.Reader.string r in
      Boot { host; port; msg; out }
    | 1 ->
      let fd = Util.Codec.Reader.uvarint r in
      let msg = Util.Codec.Reader.string r in
      let out = Util.Codec.Reader.string r in
      Connecting { fd; msg; out }
    | _ ->
      let fd = Util.Codec.Reader.uvarint r in
      let expect = Util.Codec.Reader.uvarint r in
      let got = Util.Codec.Reader.string r in
      let out = Util.Codec.Reader.string r in
      Reading { fd; expect; got; out }

  let init ~argv =
    match argv with
    | [ host; port; msg; out ] -> Boot { host = int_of_string host; port = int_of_string port; msg; out }
    | _ -> Boot { host = 0; port = 7000; msg = "hi"; out = "/tmp/echo" }

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { host; port; msg; out } ->
      let fd = ctx.socket () in
      (match ctx.connect fd (Simnet.Addr.Inet { host; port }) with
      | Ok () -> ()
      | Error e -> failwith (Simos.Errno.to_string e));
      Simos.Program.Block
        (Connecting { fd; msg; out }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
    | Connecting { fd; msg; out } -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established ->
        ignore (ctx.write_fd fd msg);
        Simos.Program.Block
          ( Reading { fd; expect = String.length msg; got = ""; out },
            Simos.Program.Readable fd )
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (Connecting { fd; msg; out }, Simos.Program.Sleep_until (ctx.now () +. 1e-3))
      | _ -> Simos.Program.Exit 2)
    | Reading { fd; expect; got; out } -> (
      match ctx.read_fd fd ~max:4096 with
      | `Data d ->
        let got = got ^ d in
        if String.length got >= expect then begin
          (match ctx.open_file out with
          | Ok ofd ->
            ignore (ctx.write_fd ofd got);
            ctx.close_fd ofd
          | Error _ -> ());
          ctx.close_fd fd;
          Simos.Program.Exit 0
        end
        else Simos.Program.Block (Reading { fd; expect; got; out }, Simos.Program.Readable fd)
      | `Would_block -> Simos.Program.Block (Reading { fd; expect; got; out }, Simos.Program.Readable fd)
      | `Eof | `Err _ -> Simos.Program.Exit 3)
end

(* Pipe pair inside one process: writes a message through a pipe to
   itself, then reads it back. *)
module Pipe_self = struct
  type state = Start | Read of { rfd : int; acc : string }

  let name = "test:pipe-self"

  let encode w = function
    | Start -> Util.Codec.Writer.u8 w 0
    | Read { rfd; acc } ->
      Util.Codec.Writer.u8 w 1;
      Util.Codec.Writer.uvarint w rfd;
      Util.Codec.Writer.string w acc

  let decode r =
    match Util.Codec.Reader.u8 r with
    | 0 -> Start
    | _ ->
      let rfd = Util.Codec.Reader.uvarint r in
      let acc = Util.Codec.Reader.string r in
      Read { rfd; acc }

  let init ~argv:_ = Start

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Start ->
      let rfd, wfd = ctx.pipe () in
      ignore (ctx.write_fd wfd "through-the-pipe");
      ctx.close_fd wfd;
      Simos.Program.Block (Read { rfd; acc = "" }, Simos.Program.Readable rfd)
    | Read { rfd; acc } -> (
      match ctx.read_fd rfd ~max:4096 with
      | `Data d -> Simos.Program.Block (Read { rfd; acc = acc ^ d }, Simos.Program.Readable rfd)
      | `Eof ->
        (match ctx.open_file "/tmp/pipe-out" with
        | Ok fd ->
          ignore (ctx.write_fd fd acc);
          ctx.close_fd fd
        | Error _ -> ());
        Simos.Program.Exit 0
      | `Would_block -> Simos.Program.Block (Read { rfd; acc }, Simos.Program.Readable rfd)
      | `Err _ -> Simos.Program.Exit 1)
end

(* Sleeps for a given duration then exits. *)
module Sleeper = struct
  type state = Start of float | Done

  let name = "test:sleeper"

  let encode w = function
    | Start d ->
      Util.Codec.Writer.u8 w 0;
      Util.Codec.Writer.f64 w d
    | Done -> Util.Codec.Writer.u8 w 1

  let decode r =
    match Util.Codec.Reader.u8 r with
    | 0 -> Start (Util.Codec.Reader.f64 r)
    | _ -> Done

  let init ~argv = match argv with [ d ] -> Start (float_of_string d) | _ -> Start 1.0

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Start d -> Simos.Program.Block (Done, Simos.Program.Sleep_until (ctx.now () +. d))
    | Done -> Simos.Program.Exit 0
end

let () =
  List.iter Simos.Program.register
    [
      (module Counter : Simos.Program.S);
      (module Forker);
      (module Execer);
      (module Echo_server);
      (module Echo_client);
      (module Pipe_self);
      (module Sleeper);
    ]

(* ------------------------------------------------------------------ *)
(* Helpers *)

let make_cluster ?(nodes = 2) () = Simos.Cluster.create ~nodes ()

let file_content k path =
  match Simos.Vfs.lookup (Simos.Kernel.vfs k) path with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Tests *)

let test_spawn_runs_to_exit () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let p = Simos.Kernel.spawn k ~prog:"test:counter" ~argv:[ "5"; "/tmp/c5" ] () in
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "file written" (Some "5") (file_content k "/tmp/c5");
  Alcotest.(check bool) "process gone" true (Simos.Kernel.find_process k ~pid:p.Simos.Kernel.pid = None)

let test_compute_advances_clock () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  ignore (Simos.Kernel.spawn k ~prog:"test:counter" ~argv:[ "100"; "/tmp/c100" ] ());
  Simos.Cluster.run c;
  (* 100 steps of 1 ms of compute *)
  Alcotest.(check bool) "clock advanced by compute time" true (Simos.Cluster.now c >= 0.1)

let test_fork_wait () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  Forker.reaped := None;
  let p = Simos.Kernel.spawn k ~prog:"test:forker" ~argv:[] () in
  Simos.Cluster.run c;
  (match !Forker.reaped with
  | Some (pid, code) ->
    check Alcotest.int "exit code 7" 7 code;
    Alcotest.(check bool) "child pid differs" true (pid <> p.Simos.Kernel.pid)
  | None -> Alcotest.fail "parent did not reap the child")

let test_exec_replaces_image () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  ignore (Simos.Kernel.spawn k ~prog:"test:execer" ~argv:[] ());
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "counter ran after exec" (Some "3")
    (file_content k "/tmp/exec-count")

let test_pipe_within_process () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  ignore (Simos.Kernel.spawn k ~prog:"test:pipe-self" ~argv:[] ());
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "pipe data" (Some "through-the-pipe")
    (file_content k "/tmp/pipe-out")

let test_sockets_cross_node () =
  let c = make_cluster ~nodes:2 () in
  let k0 = Simos.Cluster.kernel c 0 and k1 = Simos.Cluster.kernel c 1 in
  ignore (Simos.Kernel.spawn k1 ~prog:"test:echo-server" ~argv:[ "7000" ] ());
  ignore
    (Simos.Kernel.spawn k0 ~prog:"test:echo-client" ~argv:[ "1"; "7000"; "ping-pong"; "/tmp/echoed" ] ());
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "echo round-trip across nodes" (Some "ping-pong")
    (file_content k0 "/tmp/echoed")

let test_sleep_timing () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  ignore (Simos.Kernel.spawn k ~prog:"test:sleeper" ~argv:[ "2.5" ] ());
  Simos.Cluster.run c;
  Alcotest.(check bool) "slept 2.5s" true (Simos.Cluster.now c >= 2.5 && Simos.Cluster.now c < 2.6)

let test_kill_process () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let p = Simos.Kernel.spawn k ~prog:"test:sleeper" ~argv:[ "100.0" ] () in
  Sim.Engine.run ~until:1.0 (Simos.Cluster.engine c);
  Simos.Kernel.kill_process k p;
  Simos.Cluster.run c;
  Alcotest.(check bool) "clock did not wait for the sleeper" true (Simos.Cluster.now c < 100.);
  Alcotest.(check bool) "process not running" true
    (Simos.Kernel.processes k |> List.for_all (fun q -> q.Simos.Kernel.pid <> p.Simos.Kernel.pid))

let test_suspend_resume () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let p = Simos.Kernel.spawn k ~prog:"test:counter" ~argv:[ "1000"; "/tmp/s" ] () in
  Sim.Engine.run ~until:0.010 (Simos.Cluster.engine c);
  Simos.Kernel.suspend_user_threads k p;
  (* With everything suspended, the world goes quiet. *)
  Simos.Cluster.run c;
  Alcotest.(check bool) "no output while suspended" true (file_content k "/tmp/s" = None);
  let t_suspended = Simos.Cluster.now c in
  Simos.Kernel.resume_user_threads k p;
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "completes after resume" (Some "1000") (file_content k "/tmp/s");
  Alcotest.(check bool) "time advanced after resume" true (Simos.Cluster.now c > t_suspended)

let test_ssh_spawn () =
  let c = make_cluster ~nodes:3 () in
  let k0 = Simos.Cluster.kernel c 0 in
  (* A one-shot program that sshes a counter onto node 2. *)
  let module Ssher = struct
    type state = unit

    let name = "test:ssher"
    let encode _ () = ()
    let decode _ = ()
    let init ~argv:_ = ()

    let step (ctx : Simos.Program.ctx) () =
      (match ctx.ssh ~host:2 ~prog:"test:counter" ~argv:[ "4"; "/tmp/remote" ] with
      | Ok _ -> ()
      | Error e -> failwith (Simos.Errno.to_string e));
      Simos.Program.Exit 0
  end in
  Simos.Program.register (module Ssher);
  ignore (Simos.Kernel.spawn k0 ~prog:"test:ssher" ~argv:[] ());
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "remote counter ran" (Some "4")
    (file_content (Simos.Cluster.kernel c 2) "/tmp/remote")

let test_program_registry_roundtrip () =
  let inst = Simos.Program.instantiate ~name:"test:counter" ~argv:[ "9"; "/x" ] in
  let w = Util.Codec.Writer.create () in
  Simos.Program.encode_instance w inst;
  let r = Util.Codec.Reader.of_string (Util.Codec.Writer.contents w) in
  let inst' = Simos.Program.decode_instance r in
  check Alcotest.string "program name preserved" "test:counter" (Simos.Program.name_of inst')

let test_program_duplicate_registration_rejected () =
  Alcotest.(check bool) "second registration raises" true
    (try
       Simos.Program.register (module Counter);
       false
     with Invalid_argument _ -> true)

let test_unknown_program_rejected () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  Alcotest.(check bool) "unknown program raises Not_found" true
    (try
       ignore (Simos.Kernel.spawn k ~prog:"no-such-program" ~argv:[] ());
       false
     with Not_found -> true)

let test_vfs_basics () =
  let v = Simos.Vfs.create () in
  let f = Simos.Vfs.open_or_create v "/data/file1" in
  Simos.Vfs.append f "hello ";
  Simos.Vfs.append f "world";
  check Alcotest.string "append" "hello world" (Simos.Vfs.read_all f);
  Simos.Vfs.write_at f ~pos:0 "HELLO";
  check Alcotest.string "overwrite" "HELLO world" (Simos.Vfs.read_all f);
  check Alcotest.int "length" 11 (Simos.Vfs.length f);
  Simos.Vfs.set_sim_size f 1_000_000;
  check Alcotest.int "sim size" 1_000_000 (Simos.Vfs.sim_size f);
  Alcotest.(check bool) "exists" true (Simos.Vfs.exists v "/data/file1");
  (match Simos.Vfs.unlink v "/data/file1" with Ok () -> () | Error _ -> Alcotest.fail "unlink");
  Alcotest.(check bool) "gone" false (Simos.Vfs.exists v "/data/file1")

let test_vfs_sparse_write () =
  let v = Simos.Vfs.create () in
  let f = Simos.Vfs.open_or_create v "/sparse" in
  Simos.Vfs.write_at f ~pos:10 "x";
  check Alcotest.int "length includes hole" 11 (Simos.Vfs.length f);
  check Alcotest.string "hole is zeros" (String.make 10 '\000' ^ "x") (Simos.Vfs.read_all f)

let test_pty_roundtrip () =
  let p = Simos.Pty.create () in
  ignore (Simos.Pty.master_write p "ls\n");
  (match Simos.Pty.slave_read p ~max:100 with
  | `Data d -> check Alcotest.string "slave sees master input" "ls\n" d
  | `Would_block -> Alcotest.fail "no data");
  ignore (Simos.Pty.slave_write p "file1 file2\n");
  (match Simos.Pty.master_read p ~max:100 with
  | `Data d -> check Alcotest.string "master sees slave output" "file1 file2\n" d
  | `Would_block -> Alcotest.fail "no data");
  let tio = Simos.Pty.termios p in
  tio.Simos.Pty.echo <- false;
  Alcotest.(check bool) "termios persists" false (Simos.Pty.termios p).Simos.Pty.echo

let test_pty_drain_refill () =
  let p = Simos.Pty.create () in
  ignore (Simos.Pty.master_write p "input");
  ignore (Simos.Pty.slave_write p "output");
  let to_slave, to_master = Simos.Pty.drain p in
  check Alcotest.string "drained input" "input" to_slave;
  check Alcotest.string "drained output" "output" to_master;
  check (Alcotest.pair Alcotest.int Alcotest.int) "empty after drain" (0, 0) (Simos.Pty.buffered p);
  Simos.Pty.refill p ~to_slave ~to_master;
  (match Simos.Pty.slave_read p ~max:100 with
  | `Data d -> check Alcotest.string "refilled" "input" d
  | `Would_block -> Alcotest.fail "no data after refill")

let test_proc_maps () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let p = Simos.Kernel.spawn k ~prog:"test:sleeper" ~argv:[ "10.0" ] () in
  let _ =
    Mem.Address_space.map p.Simos.Kernel.space ~kind:Mem.Region.Heap ~perms:Mem.Region.rw
      ~bytes:8192 ()
  in
  let maps = Simos.Kernel.proc_maps p in
  Alcotest.(check bool) "maps mentions heap" true
    (String.length maps > 0
    && List.exists
         (fun line -> String.length line >= 4 && String.sub line (String.length line - 4) 4 = "heap")
         (String.split_on_char '\n' maps))

let test_fd_sharing_after_dup () =
  (* dup2 makes two fds share one description, owner included — the basis
     of the F_SETOWN election. *)
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let module Duper = struct
    type state = unit

    let name = "test:duper"
    let encode _ () = ()
    let decode _ = ()
    let init ~argv:_ = ()

    let step (ctx : Simos.Program.ctx) () =
      let rfd, _wfd = ctx.pipe () in
      (match ctx.dup2 ~src:rfd ~dst:10 with Ok () -> () | Error _ -> failwith "dup2");
      ctx.set_fd_owner rfd 42;
      assert (ctx.get_fd_owner 10 = 42);
      Simos.Program.Exit 0
  end in
  Simos.Program.register (module Duper);
  ignore (Simos.Kernel.spawn k ~prog:"test:duper" ~argv:[] ());
  Simos.Cluster.run c
  (* assertion inside the program would have crashed the engine *)


let test_env_inherited_across_ssh () =
  (* DMTCP_* variables ride ssh to remote processes — the mechanism that
     makes remotely spawned processes hijacked transparently *)
  let c = make_cluster ~nodes:3 () in
  let k0 = Simos.Cluster.kernel c 0 in
  let module Env_ssher = struct
    type state = unit

    let name = "test:env-ssher"
    let encode _ () = ()
    let decode _ = ()
    let init ~argv:_ = ()

    let step (ctx : Simos.Program.ctx) () =
      ignore (ctx.ssh ~host:2 ~prog:"test:env-reader" ~argv:[]);
      Simos.Program.Exit 0
  end in
  let module Env_reader = struct
    type state = unit

    let name = "test:env-reader"
    let encode _ () = ()
    let decode _ = ()
    let init ~argv:_ = ()

    let step (ctx : Simos.Program.ctx) () =
      (match ctx.open_file "/tmp/env-seen" with
      | Ok fd ->
        ignore (ctx.write_fd fd (Option.value ~default:"(unset)" (ctx.getenv "MARKER")));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
  end in
  Simos.Program.register (module Env_ssher);
  Simos.Program.register (module Env_reader);
  ignore
    (Simos.Kernel.spawn k0 ~prog:"test:env-ssher" ~argv:[] ~env:[ ("MARKER", "rode-the-ssh") ] ());
  Simos.Cluster.run c;
  check (Alcotest.option Alcotest.string) "env crossed ssh" (Some "rode-the-ssh")
    (file_content (Simos.Cluster.kernel c 2) "/tmp/env-seen")

let test_exec_preserves_env_hijack () =
  (* a process that setenvs DMTCP_HIJACK and execs stays hijacked — how
     dmtcp_checkpoint injects the library across exec *)
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let module Hijack_exec = struct
    type state = bool  (* execed? *)

    let name = "test:hijack-exec"
    let encode w b = Util.Codec.Writer.bool w b
    let decode r = Util.Codec.Reader.bool r
    let init ~argv:_ = false

    let step (ctx : Simos.Program.ctx) execed =
      if execed then Simos.Program.Exit 0
      else begin
        ctx.setenv "DMTCP_HIJACK" "yes";
        Simos.Program.Exec { st = true; prog = "test:sleeper"; argv = [ "3.0" ] }
      end
  end in
  Simos.Program.register (module Hijack_exec);
  let p = Simos.Kernel.spawn k ~prog:"test:hijack-exec" ~argv:[] () in
  Sim.Engine.run ~until:1.0 (Simos.Cluster.engine c);
  Alcotest.(check bool) "hijacked after exec" true p.Simos.Kernel.hijacked;
  check Alcotest.(list string) "image replaced" [ "test:sleeper"; "3.0" ] p.Simos.Kernel.cmdline

let test_signal_dispositions () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  let p = Simos.Kernel.spawn k ~prog:"test:sleeper" ~argv:[ "50.0" ] () in
  Sim.Engine.run ~until:0.1 (Simos.Cluster.engine c);
  (* SIGTERM with default disposition kills *)
  let q = Simos.Kernel.spawn k ~prog:"test:sleeper" ~argv:[ "50.0" ] () in
  Simos.Kernel.deliver_signal k q ~signal:15;
  Alcotest.(check bool) "default TERM kills" true (q.Simos.Kernel.pstate <> Simos.Kernel.Running);
  (* ignored TERM does not *)
  Simos.Kernel.set_sigaction p 15 Simos.Kernel.Sig_ignore;
  Simos.Kernel.deliver_signal k p ~signal:15;
  Alcotest.(check bool) "ignored TERM survives" true (p.Simos.Kernel.pstate = Simos.Kernel.Running);
  (* handled signal queues *)
  Simos.Kernel.set_sigaction p 10 (Simos.Kernel.Sig_handler "on_usr1");
  Simos.Kernel.deliver_signal k p ~signal:10;
  Simos.Kernel.deliver_signal k p ~signal:10;
  check Alcotest.(list int) "pending queue" [ 10; 10 ] p.Simos.Kernel.pending_signals;
  (* SIGKILL cannot be ignored *)
  Simos.Kernel.set_sigaction p 9 Simos.Kernel.Sig_ignore;
  Simos.Kernel.deliver_signal k p ~signal:9;
  Alcotest.(check bool) "KILL always kills" true (p.Simos.Kernel.pstate <> Simos.Kernel.Running)

let test_signal_table_inherited_by_fork () =
  let c = make_cluster () in
  let k = Simos.Cluster.kernel c 0 in
  Forker.reaped := None;
  let p = Simos.Kernel.spawn k ~prog:"test:forker" ~argv:[] () in
  Simos.Kernel.set_sigaction p 15 Simos.Kernel.Sig_ignore;
  Simos.Cluster.run c;
  Alcotest.(check bool) "fork completed with inherited table" true (!Forker.reaped <> None)

let () =
  Alcotest.run "simos"
    [
      ( "kernel",
        [
          Alcotest.test_case "spawn runs to exit" `Quick test_spawn_runs_to_exit;
          Alcotest.test_case "compute advances clock" `Quick test_compute_advances_clock;
          Alcotest.test_case "fork + wait" `Quick test_fork_wait;
          Alcotest.test_case "exec replaces image" `Quick test_exec_replaces_image;
          Alcotest.test_case "pipe within process" `Quick test_pipe_within_process;
          Alcotest.test_case "sockets across nodes" `Quick test_sockets_cross_node;
          Alcotest.test_case "sleep timing" `Quick test_sleep_timing;
          Alcotest.test_case "kill process" `Quick test_kill_process;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "ssh remote spawn" `Quick test_ssh_spawn;
          Alcotest.test_case "fd sharing after dup2" `Quick test_fd_sharing_after_dup;
        ] );
      ( "programs",
        [
          Alcotest.test_case "registry round-trip" `Quick test_program_registry_roundtrip;
          Alcotest.test_case "duplicate registration" `Quick test_program_duplicate_registration_rejected;
          Alcotest.test_case "unknown program" `Quick test_unknown_program_rejected;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "basics" `Quick test_vfs_basics;
          Alcotest.test_case "sparse write" `Quick test_vfs_sparse_write;
        ] );
      ( "pty",
        [
          Alcotest.test_case "round-trip" `Quick test_pty_roundtrip;
          Alcotest.test_case "drain/refill" `Quick test_pty_drain_refill;
        ] );
      ("procfs", [ Alcotest.test_case "maps" `Quick test_proc_maps ]);
      ( "signals",
        [
          Alcotest.test_case "dispositions" `Quick test_signal_dispositions;
          Alcotest.test_case "inherited by fork" `Quick test_signal_table_inherited_by_fork;
        ] );
      ( "environment",
        [
          Alcotest.test_case "env crosses ssh" `Quick test_env_inherited_across_ssh;
          Alcotest.test_case "exec preserves hijack" `Quick test_exec_preserves_env_hijack;
        ] );
    ]
