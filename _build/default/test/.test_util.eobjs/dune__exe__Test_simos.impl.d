test/test_simos.ml: Alcotest List Mem Option Sim Simnet Simos String Util
