test/test_mtcp.mli:
