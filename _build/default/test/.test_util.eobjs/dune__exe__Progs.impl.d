test/progs.ml: Bytes Dmtcp Int64 List Mem Printf Simnet Simos String Util
