test/test_dmtcp.ml: Alcotest Compress Dmtcp Float Int List Mtcp Option Printf Progs QCheck QCheck_alcotest Set Sim Simnet Simos String Util
