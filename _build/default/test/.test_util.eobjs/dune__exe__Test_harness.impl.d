test/test_harness.ml: Alcotest Harness List Option Printf String Util
