test/test_compress.ml: Alcotest Array Bytes Char Compress Gen List Printf QCheck QCheck_alcotest String Util
