test/test_storage.ml: Alcotest Printf Sim Storage
