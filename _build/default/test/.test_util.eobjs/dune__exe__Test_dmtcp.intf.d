test/test_dmtcp.mli:
