test/test_mtcp.ml: Alcotest Bytes Compress Digest Dmtcp List Mem Mtcp Option Printf Progs Sim Simos Util
