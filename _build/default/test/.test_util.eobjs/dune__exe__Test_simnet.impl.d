test/test_simnet.ml: Alcotest Buffer Format List Option Printf QCheck QCheck_alcotest Sim Simnet String Util
