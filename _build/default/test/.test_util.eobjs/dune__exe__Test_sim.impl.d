test/test_sim.ml: Alcotest Fun List QCheck QCheck_alcotest Sim
