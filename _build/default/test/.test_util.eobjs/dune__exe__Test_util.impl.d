test/test_util.ml: Alcotest Array Bytes Codec Crc32 Fun Int64 List QCheck QCheck_alcotest Rng Stats String Table Units Util
