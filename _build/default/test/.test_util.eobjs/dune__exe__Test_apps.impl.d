test/test_apps.ml: Alcotest Apps Dmtcp Hashtbl List Printf Sim Simos String Util
