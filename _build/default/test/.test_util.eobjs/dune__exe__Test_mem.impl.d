test/test_mem.ml: Alcotest Bytes Compress Int64 List Mem QCheck QCheck_alcotest String Util
