(* Tests for the discrete-event engine: ordering, cancellation, time
   limits, determinism of simultaneous events. *)

let check = Alcotest.check

let test_empty_run () =
  let e = Sim.Engine.create () in
  Sim.Engine.run e;
  check (Alcotest.float 0.) "clock stays at 0" 0. (Sim.Engine.now e)

let test_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let at delay tag = ignore (Sim.Engine.schedule e ~delay (fun () -> log := tag :: !log)) in
  at 3.0 "c";
  at 1.0 "a";
  at 2.0 "b";
  Sim.Engine.run e;
  check Alcotest.(list string) "fires in time order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 1e-12) "clock at last event" 3.0 (Sim.Engine.now e)

let test_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "FIFO among simultaneous events" (List.init 10 Fun.id) (List.rev !log)

let test_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run e;
  check Alcotest.bool "cancelled event does not fire" false !fired

let test_cancel_twice_ok () =
  let e = Sim.Engine.create () in
  let h = Sim.Engine.schedule e ~delay:1.0 ignore in
  Sim.Engine.cancel h;
  Sim.Engine.cancel h;
  Sim.Engine.run e

let test_nested_scheduling () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore (Sim.Engine.schedule e ~delay:0.5 (fun () -> times := Sim.Engine.now e :: !times))));
  Sim.Engine.run e;
  check Alcotest.(list (float 1e-12)) "nested event at 1.5" [ 1.0; 1.5 ] (List.rev !times)

let test_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  Sim.Engine.run ~until:2.0 e;
  check Alcotest.int "only the first fired" 1 !fired;
  check (Alcotest.float 1e-12) "clock advanced to limit" 2.0 (Sim.Engine.now e);
  Sim.Engine.run e;
  check Alcotest.int "second fires later" 2 !fired;
  check (Alcotest.float 1e-12) "clock at 5" 5.0 (Sim.Engine.now e)

let test_advance_without_events () =
  let e = Sim.Engine.create () in
  Sim.Engine.advance e ~delay:7.5;
  check (Alcotest.float 1e-12) "advance moves the clock" 7.5 (Sim.Engine.now e)

let test_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Sim.Engine.schedule e ~delay:(-1.0) ignore))

let test_schedule_in_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 ignore);
  Sim.Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Sim.Engine.schedule_at e ~time:0.5 ignore))

let test_step () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> incr n));
  ignore (Sim.Engine.schedule e ~delay:2.0 (fun () -> incr n));
  check Alcotest.bool "step fires one" true (Sim.Engine.step e);
  check Alcotest.int "one fired" 1 !n;
  check Alcotest.bool "step fires another" true (Sim.Engine.step e);
  check Alcotest.bool "queue empty" false (Sim.Engine.step e)

(* Heap property test: popping returns priorities in nondecreasing order. *)
let prop_heap_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"heap pops sorted"
       QCheck.(list (float_bound_exclusive 1000.))
       (fun priorities ->
         let h = Sim.Heap.create () in
         List.iteri (fun i p -> Sim.Heap.push h ~priority:p i) priorities;
         let rec drain acc =
           match Sim.Heap.pop h with
           | None -> List.rev acc
           | Some (p, _) -> drain (p :: acc)
         in
         let popped = drain [] in
         popped = List.sort compare priorities))

let prop_heap_fifo_ties =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"heap preserves FIFO among ties"
       QCheck.(int_bound 50)
       (fun n ->
         let h = Sim.Heap.create () in
         for i = 0 to n do
           Sim.Heap.push h ~priority:1.0 i
         done;
         let rec drain acc =
           match Sim.Heap.pop h with
           | None -> List.rev acc
           | Some (_, v) -> drain (v :: acc)
         in
         drain [] = List.init (n + 1) Fun.id))

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel twice" `Quick test_cancel_twice_ok;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "advance without events" `Quick test_advance_without_events;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "schedule in past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "step" `Quick test_step;
        ] );
      ("heap", [ prop_heap_sorted; prop_heap_fifo_ties ]);
    ]
