(* Integration sanity for the experiment harness: each figure/table
   driver runs end-to-end at a tiny scale and produces sane numbers. *)

let check = Alcotest.check

let test_fig3_single_app () =
  let rows = Harness.Fig3.run ~reps:1 ~apps:[ "python" ] () in
  check Alcotest.int "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "checkpoint time positive" true
    (Util.Stats.mean r.Harness.Fig3.m.Harness.Common.ckpt_times > 0.);
  Alcotest.(check bool) "compressed below raw" true
    (r.Harness.Fig3.m.Harness.Common.compressed_bytes
    < r.Harness.Fig3.m.Harness.Common.uncompressed_bytes);
  Alcotest.(check bool) "text renders" true (String.length (Harness.Fig3.to_text rows) > 100)

let test_fig6_two_points () =
  let pts = Harness.Fig6.run ~reps:1 ~totals_gb:[ 2.; 8. ] ~nprocs:8 () in
  check Alcotest.int "two points" 2 (List.length pts);
  (match pts with
  | [ a; b ] ->
    Alcotest.(check bool)
      (Printf.sprintf "more memory, longer checkpoint (%.2f < %.2f)" a.Harness.Fig6.ckpt
         b.Harness.Fig6.ckpt)
      true
      (a.Harness.Fig6.ckpt < b.Harness.Fig6.ckpt)
  | _ -> Alcotest.fail "expected two points");
  Alcotest.(check bool) "text renders" true (String.length (Harness.Fig6.to_text pts) > 50)

let test_table1_quick () =
  let r = Harness.Table1.run ~reps:1 ~nprocs:8 () in
  let get stages name = Option.value ~default:0. (List.assoc_opt name stages) in
  (* write dominates and compression makes it worse — the table's story *)
  Alcotest.(check bool) "write dominates suspend (uncompressed)" true
    (get r.Harness.Table1.ckpt_uncompressed "ckpt/write"
    > get r.Harness.Table1.ckpt_uncompressed "ckpt/suspend");
  Alcotest.(check bool) "compressed write slower than uncompressed" true
    (get r.Harness.Table1.ckpt_compressed "ckpt/write"
    > get r.Harness.Table1.ckpt_uncompressed "ckpt/write");
  Alcotest.(check bool) "forked write cheapest" true
    (get r.Harness.Table1.ckpt_forked "ckpt/write"
    < get r.Harness.Table1.ckpt_uncompressed "ckpt/write");
  Alcotest.(check bool) "restart memory stage dominates" true
    (get r.Harness.Table1.restart_compressed "restart/mem"
    > get r.Harness.Table1.restart_compressed "restart/files");
  Alcotest.(check bool) "text renders" true (String.length (Harness.Table1.to_text r) > 100)

let test_forked_ablation () =
  let r = Harness.Extras.forked_ablation () in
  Alcotest.(check bool)
    (Printf.sprintf "forked (%.3f) well under plain (%.3f)" r.Harness.Extras.forked_s
       r.Harness.Extras.plain_s)
    true
    (r.Harness.Extras.forked_s *. 3. < r.Harness.Extras.plain_s)

let test_incremental_ablation () =
  let r = Harness.Extras.incremental_ablation ~ckpts:2 () in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "incremental (%.3f) far below full (%.3f)" t r.Harness.Extras.full_first)
        true
        (t *. 10. < r.Harness.Extras.full_first))
    r.Harness.Extras.incrementals

let test_drain_ablation_monotone () =
  let pts = Harness.Extras.drain_ablation ~pairs_list:[ 1; 4 ] () in
  match pts with
  | [ a; b ] ->
    Alcotest.(check bool) "more pairs, more drained bytes" true
      (b.Harness.Extras.drained_kb > a.Harness.Extras.drained_kb);
    Alcotest.(check bool) "drained something" true (a.Harness.Extras.drained_kb > 0.)
  | _ -> Alcotest.fail "expected two points"

let test_fig5_tiny () =
  let r = Harness.Fig5.run ~reps:1 ~sizes:[ 8; 16 ] () in
  check Alcotest.int "two local points" 2 (List.length r.Harness.Fig5.local);
  check Alcotest.int "two san points" 2 (List.length r.Harness.Fig5.san);
  (* local-disk checkpointing stays roughly flat as processes double *)
  match r.Harness.Fig5.local with
  | [ a; b ] ->
    let ta = Util.Stats.mean a.Harness.Fig5.ckpt and tb = Util.Stats.mean b.Harness.Fig5.ckpt in
    Alcotest.(check bool)
      (Printf.sprintf "near-constant scaling (%.2f vs %.2f)" ta tb)
      true
      (tb < ta *. 1.8)
  | _ -> Alcotest.fail "expected two points"

let () =
  Alcotest.run "harness"
    [
      ( "figures",
        [
          Alcotest.test_case "fig3 single app" `Quick test_fig3_single_app;
          Alcotest.test_case "fig5 tiny scaling" `Quick test_fig5_tiny;
          Alcotest.test_case "fig6 two points" `Quick test_fig6_two_points;
          Alcotest.test_case "table1 quick" `Quick test_table1_quick;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "forked" `Quick test_forked_ablation;
          Alcotest.test_case "incremental" `Quick test_incremental_ablation;
          Alcotest.test_case "drain monotone" `Quick test_drain_ablation_monotone;
        ] );
    ]
