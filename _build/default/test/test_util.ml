(* Tests for the util library: RNG determinism, codec round-trips, CRC-32
   known-answer values, statistics, table rendering. *)

open Util

let check = Alcotest.check
let qtest ?(count = 200) name arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 32 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let t = Rng.create 99L in
  for _ = 1 to 10_000 do
    let v = Rng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int_in () =
  let t = Rng.create 5L in
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-3) 4 in
    if v < -3 || v > 4 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_bounds () =
  let t = Rng.create 11L in
  for _ = 1 to 10_000 do
    let v = Rng.float t 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_rng_gaussian_moments () =
  let t = Rng.create 3L in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Rng.gaussian t ~mean:10. ~stddev:2.)
  done;
  Alcotest.(check bool) "mean near 10" true (abs_float (Stats.mean s -. 10.) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (abs_float (Stats.stddev s -. 2.) < 0.1)

let test_rng_bytes_len () =
  let t = Rng.create 8L in
  List.iter (fun n -> check Alcotest.int "length" n (Bytes.length (Rng.bytes t n))) [ 0; 1; 7; 8; 9; 4096 ]

let test_rng_shuffle_permutation () =
  let t = Rng.create 21L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let t = Rng.create 13L in
  for _ = 1 to 1000 do
    if Rng.exponential t ~mean:0.5 < 0. then Alcotest.fail "negative exponential sample"
  done

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_primitives () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 200;
  Codec.Writer.u16 w 65535;
  Codec.Writer.u32 w 123456789;
  Codec.Writer.i64 w (-42L);
  Codec.Writer.f64 w 3.14159;
  Codec.Writer.bool w true;
  Codec.Writer.string w "hello";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  check Alcotest.int "u8" 200 (Codec.Reader.u8 r);
  check Alcotest.int "u16" 65535 (Codec.Reader.u16 r);
  check Alcotest.int "u32" 123456789 (Codec.Reader.u32 r);
  check Alcotest.int64 "i64" (-42L) (Codec.Reader.i64 r);
  check (Alcotest.float 1e-12) "f64" 3.14159 (Codec.Reader.f64 r);
  check Alcotest.bool "bool" true (Codec.Reader.bool r);
  check Alcotest.string "string" "hello" (Codec.Reader.string r);
  Codec.Reader.expect_end r

let test_codec_truncated () =
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w 7;
  let s = Codec.Writer.contents w in
  let r = Codec.Reader.of_string (String.sub s 0 2) in
  Alcotest.check_raises "truncated" (Codec.Reader.Corrupt "truncated input (need 1 bytes, have 0)")
    (fun () -> ignore (Codec.Reader.u32 r))

let test_codec_trailing () =
  let r = Codec.Reader.of_string "xy" in
  ignore (Codec.Reader.u8 r);
  Alcotest.check_raises "trailing" (Codec.Reader.Corrupt "1 trailing bytes") (fun () ->
      Codec.Reader.expect_end r)

let test_codec_uvarint_negative () =
  let w = Codec.Writer.create () in
  Alcotest.check_raises "negative uvarint" (Invalid_argument "Codec.Writer.uvarint: negative")
    (fun () -> Codec.Writer.uvarint w (-1))

let test_codec_containers () =
  let enc w (a, bs, c) =
    Codec.Writer.varint w a;
    Codec.Writer.list Codec.Writer.string w bs;
    Codec.Writer.option Codec.Writer.f64 w c
  in
  let dec r =
    let a = Codec.Reader.varint r in
    let bs = Codec.Reader.list Codec.Reader.string r in
    let c = Codec.Reader.option Codec.Reader.f64 r in
    (a, bs, c)
  in
  let v = (-77, [ "a"; ""; "xyz" ], Some 2.5) in
  let v' = Codec.roundtrip enc dec v in
  Alcotest.(check bool) "containers round-trip" true (v = v')

let prop_varint_roundtrip =
  qtest "varint round-trip" QCheck.(int) (fun v ->
      Codec.roundtrip Codec.Writer.varint Codec.Reader.varint v = v)

let prop_uvarint_roundtrip =
  qtest "uvarint round-trip"
    QCheck.(map abs int)
    (fun v -> Codec.roundtrip Codec.Writer.uvarint Codec.Reader.uvarint v = v)

let prop_string_roundtrip =
  qtest "string round-trip" QCheck.(string) (fun s ->
      Codec.roundtrip Codec.Writer.string Codec.Reader.string s = s)

let prop_f64_roundtrip =
  qtest "f64 round-trip" QCheck.(float) (fun v ->
      let v' = Codec.roundtrip Codec.Writer.f64 Codec.Reader.f64 v in
      Int64.bits_of_float v = Int64.bits_of_float v')

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc32_known_answers () =
  (* Standard CRC-32 check values. *)
  check Alcotest.int32 "empty" 0l (Crc32.digest "");
  check Alcotest.int32 "123456789" 0xCBF43926l (Crc32.digest "123456789");
  check Alcotest.int32 "a" 0xE8B7BE43l (Crc32.digest "a")

let test_crc32_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let one_shot = Crc32.digest s in
  let acc = Crc32.update Crc32.init s 0 10 in
  let acc = Crc32.update acc s 10 (String.length s - 10) in
  check Alcotest.int32 "incremental equals one-shot" one_shot (Crc32.finish acc)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check Alcotest.int "count" 8 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "stddev (sample)" 2.13809 (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.) "mean of empty" 0. (Stats.mean s);
  check (Alcotest.float 0.) "stddev of empty" 0. (Stats.stddev s)

let test_stats_single () =
  let s = Stats.of_list [ 3.5 ] in
  check (Alcotest.float 0.) "stddev of singleton" 0. (Stats.stddev s);
  check (Alcotest.float 0.) "mean of singleton" 3.5 (Stats.mean s)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bcd"; "22" ] ] in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 5 (List.length lines)

let test_bar_chart_nonempty () =
  let series =
    [ { Table.series_name = "ckpt"; points = [ ("app1", 1.0); ("app2", 2.0) ] };
      { Table.series_name = "restart"; points = [ ("app1", 0.5); ("app2", 1.5) ] } ]
  in
  let s = Table.bar_chart ~title:"t" ~unit_label:"s" series in
  Alcotest.(check bool) "mentions app2" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.split_on_char '\n' s |> List.iter (fun l -> if String.length l >= 4 && String.sub l 0 4 = "app2" then re_found := true);
    !re_found)

let test_units () =
  check Alcotest.string "bytes" "512 B" (Units.pp_bytes 512);
  check Alcotest.string "mb" "225.0 MB" (Units.pp_mb (225 * Units.mb));
  check Alcotest.string "seconds" "2.000 s" (Units.pp_seconds 2.0);
  check Alcotest.string "millis" "1.500 ms" (Units.pp_seconds 0.0015)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
        ] );
      ( "codec",
        [
          Alcotest.test_case "primitives" `Quick test_codec_primitives;
          Alcotest.test_case "truncated input" `Quick test_codec_truncated;
          Alcotest.test_case "trailing bytes" `Quick test_codec_trailing;
          Alcotest.test_case "negative uvarint" `Quick test_codec_uvarint_negative;
          Alcotest.test_case "containers" `Quick test_codec_containers;
          prop_varint_roundtrip;
          prop_uvarint_roundtrip;
          prop_string_roundtrip;
          prop_f64_roundtrip;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known answers" `Quick test_crc32_known_answers;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bar chart" `Quick test_bar_chart_nonempty;
          Alcotest.test_case "units" `Quick test_units;
        ] );
    ]
