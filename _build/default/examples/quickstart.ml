(* Quickstart: write a small checkpointable program against the public
   API, run it under dmtcp_checkpoint on a simulated cluster, checkpoint
   it mid-run, kill it, and restart it from the image.

   Run with:  dune exec examples/quickstart.exe *)

module W = Util.Codec.Writer
module R = Util.Codec.Reader

(* A user program is a serializable state machine (see Simos.Program).
   This one counts primes below a bound and writes the count to a file.
   Everything that must survive a checkpoint lives in [state]. *)
module Prime_counter = struct
  type state = { n : int; bound : int; found : int }

  let name = "example:primes"

  let encode w st =
    W.uvarint w st.n;
    W.uvarint w st.bound;
    W.uvarint w st.found

  let decode r =
    let n = R.uvarint r in
    let bound = R.uvarint r in
    let found = R.uvarint r in
    { n; bound; found }

  let init ~argv =
    match argv with
    | [ bound ] -> { n = 2; bound = int_of_string bound; found = 0 }
    | _ -> { n = 2; bound = 10_000; found = 0 }

  let is_prime n =
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    n >= 2 && go 2

  let step (ctx : Simos.Program.ctx) st =
    if st.n > st.bound then begin
      (match ctx.open_file "/tmp/primes" with
      | Ok fd ->
        ignore (ctx.write_fd fd (Printf.sprintf "%d primes below %d" st.found st.bound));
        ctx.close_fd fd
      | Error _ -> ());
      Simos.Program.Exit 0
    end
    else
      (* one candidate per step, costing a little simulated CPU *)
      Simos.Program.Compute
        ({ st with n = st.n + 1; found = (st.found + if is_prime st.n then 1 else 0) }, 50e-6)
end

let () =
  Simos.Program.register (module Prime_counter);

  (* a 4-node cluster with DMTCP installed *)
  let cluster = Simos.Cluster.create ~nodes:4 () in
  let rt = Dmtcp.Api.install cluster () in

  (* dmtcp_checkpoint example:primes 20000   (on node 1) *)
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"example:primes" ~argv:[ "20000" ]);

  (* let it run for half a (simulated) second, then checkpoint *)
  Sim.Engine.run ~until:0.5 (Simos.Cluster.engine cluster);
  Dmtcp.Api.checkpoint_now rt;
  Printf.printf "checkpoint took %.3f simulated seconds\n" (Dmtcp.Api.last_checkpoint_seconds rt);

  let script = Dmtcp.Api.restart_script rt in
  print_string (Dmtcp.Restart_script.to_text script);

  (* the machine dies... *)
  Dmtcp.Api.kill_computation rt;

  (* ...and the computation resumes from the image, on a different node *)
  let script = Dmtcp.Restart_script.remap script (fun _ -> 3) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Printf.printf "restart took %.3f simulated seconds\n" (Dmtcp.Api.last_restart_seconds rt);

  (* run to completion and read the result off node 3 *)
  Simos.Cluster.run cluster;
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cluster 3)) "/tmp/primes" with
  | Some f -> Printf.printf "result: %s\n" (Simos.Vfs.read_all f)
  | None -> print_endline "ERROR: no result file"
