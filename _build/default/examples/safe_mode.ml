(* Use case 8 from the paper's introduction: "upon detecting distributed
   deadlock or race, automatically revert to an earlier checkpoint image
   and restart in slower, 'safe mode', until beyond the danger point."

   Two processes exchange values in rounds.  In fast mode they use an
   unsafe send-send/recv-recv order that deadlocks at a known round (both
   ends blocked on read, classic head-of-line deadlock).  A watchdog takes
   periodic checkpoints; when it sees no progress, it kills the wedged
   computation, drops a "safe mode" flag file, and restarts from the last
   good image — the restarted processes see the flag and proceed in the
   safe order past the danger point.

   Run with:  dune exec examples/safe_mode.exe *)

module W = Util.Codec.Writer
module R = Util.Codec.Reader

let danger_round = 40
let total_rounds = 80

module Peer = struct
  type state =
    | Boot of { me : int; other_host : int }
    | Connecting of { fd : int }
    | Run of { fd : int; round : int; sent : bool; buf : string }

  let name = "example:peer"

  let encode w = function
    | Boot { me; other_host } ->
      W.u8 w 0;
      W.uvarint w me;
      W.uvarint w other_host
    | Connecting { fd } ->
      W.u8 w 1;
      W.varint w fd
    | Run { fd; round; sent; buf } ->
      W.u8 w 2;
      W.varint w fd;
      W.uvarint w round;
      W.bool w sent;
      W.string w buf

  let decode r =
    match R.u8 r with
    | 0 ->
      let me = R.uvarint r in
      let other_host = R.uvarint r in
      Boot { me; other_host }
    | 1 -> Connecting { fd = R.varint r }
    | _ ->
      let fd = R.varint r in
      let round = R.uvarint r in
      let sent = R.bool r in
      let buf = R.string r in
      Run { fd; round; sent; buf }

  let init ~argv =
    match argv with
    | [ me; other ] -> Boot { me = int_of_string me; other_host = int_of_string other }
    | _ -> Boot { me = 0; other_host = 1 }

  let safe_mode (ctx : Simos.Program.ctx) = ctx.file_exists "/etc/safe-mode"

  let step (ctx : Simos.Program.ctx) st =
    match st with
    | Boot { me; other_host } ->
      if me = 0 then begin
        (* peer 0 listens; peer 1 connects *)
        let lfd = ctx.socket () in
        ignore (ctx.bind lfd ~port:7600);
        ignore (ctx.listen lfd ~backlog:1);
        Simos.Program.Block (Connecting { fd = -lfd - 10 }, Simos.Program.Readable lfd)
      end
      else begin
        let fd = ctx.socket () in
        ignore (ctx.connect fd (Simnet.Addr.Inet { host = other_host; port = 7600 }));
        Simos.Program.Block (Connecting { fd }, Simos.Program.Sleep_until (ctx.now () +. 2e-3))
      end
    | Connecting { fd } when fd < -1 -> (
      let lfd = -fd - 10 in
      match ctx.accept lfd with
      | Some conn ->
        ctx.close_fd lfd;
        Simos.Program.Continue (Run { fd = conn; round = 0; sent = false; buf = "" })
      | None -> Simos.Program.Block (st, Simos.Program.Readable lfd))
    | Connecting { fd } -> (
      match ctx.sock_state fd with
      | Some Simnet.Fabric.Established ->
        Simos.Program.Continue (Run { fd; round = 0; sent = false; buf = "" })
      | Some Simnet.Fabric.Connecting ->
        Simos.Program.Block (st, Simos.Program.Sleep_until (ctx.now () +. 2e-3))
      | _ -> Simos.Program.Exit 2)
    | Run { fd; round; sent; buf } ->
      if round >= total_rounds then begin
        (match ctx.open_file "/tmp/safe-result" with
        | Ok ofd ->
          ignore (ctx.write_fd ofd (Printf.sprintf "COMPLETED %d rounds" round));
          ctx.close_fd ofd
        | Error _ -> ());
        Simos.Program.Exit 0
      end
      else begin
        (* The race: in fast mode, at the danger round both peers try to
           receive before sending — mutual wait, distributed deadlock.
           Safe mode always sends first. *)
        let recv_first = round = danger_round && not (safe_mode ctx) in
        if (not sent) && not recv_first then begin
          ignore (ctx.write_fd fd (Printf.sprintf "%08d" round));
          Simos.Program.Compute (Run { fd; round; sent = true; buf }, 1e-3)
        end
        else begin
          match ctx.read_fd fd ~max:8 with
          | `Data d ->
            let buf = buf ^ d in
            if String.length buf >= 8 then begin
              if recv_first then
                (* never reached in fast mode: the peer is also waiting *)
                ignore (ctx.write_fd fd (Printf.sprintf "%08d" round));
              Simos.Program.Compute
                (Run { fd; round = round + 1; sent = false; buf = "" }, 5e-3)
            end
            else Simos.Program.Block (Run { fd; round; sent; buf }, Simos.Program.Readable fd)
          | `Would_block -> Simos.Program.Block (Run { fd; round; sent; buf }, Simos.Program.Readable fd)
          | `Eof | `Err _ -> Simos.Program.Exit 3
        end
      end
end

let () =
  Simos.Program.register (module Peer);
  Apps.Registry.register_all ();
  let cluster = Simos.Cluster.create ~nodes:2 () in
  let rt = Dmtcp.Api.install cluster () in
  let engine = Simos.Cluster.engine cluster in

  ignore (Dmtcp.Api.launch rt ~node:0 ~prog:"example:peer" ~argv:[ "0"; "1" ]);
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"example:peer" ~argv:[ "1"; "0" ]);

  (* checkpoint while the computation is still healthy: this image set is
     the archived "known good" state we can always revert to (in
     production this would be the N-1th interval checkpoint) *)
  Sim.Engine.run ~until:0.1 engine;
  Dmtcp.Api.checkpoint_now rt;
  let known_good = Dmtcp.Api.restart_script rt in
  Printf.printf "archived a healthy checkpoint at t=%.2f\n" (Simos.Cluster.now cluster);

  (* watchdog: deadlock = processes alive but the simulation quiescent *)
  let deadlocked = ref false in
  (let rec watch () =
     let t = Simos.Cluster.now cluster in
     Sim.Engine.run ~until:(t +. 0.5) engine;
     let alive = List.length (Dmtcp.Runtime.hijacked_processes rt) in
     if alive = 0 then () (* finished *)
     else if Simos.Cluster.now cluster > 5.0 then deadlocked := true
     else watch ()
   in
   watch ());

  if !deadlocked then begin
    Printf.printf "deadlock detected at t=%.1f (both peers blocked in round %d)\n"
      (Simos.Cluster.now cluster) danger_round;
    let script = known_good in
    Dmtcp.Api.kill_computation rt;
    (* drop the safe-mode flag where the restarted processes will look *)
    List.iter
      (fun (host, _) ->
        ignore
          (Simos.Vfs.open_or_create (Simos.Kernel.vfs (Simos.Cluster.kernel cluster host))
             "/etc/safe-mode"))
      script.Dmtcp.Restart_script.entries;
    Printf.printf "reverting to the archived checkpoint, restarting in safe mode...\n";
    Dmtcp.Api.restart rt script;
    Dmtcp.Api.await_restart rt;
    Sim.Engine.run ~until:(Simos.Cluster.now cluster +. 20.) engine
  end;

  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cluster 0)) "/tmp/safe-result"
  with
  | Some f -> Printf.printf "outcome: %s (past the danger point)\n" (Simos.Vfs.read_all f)
  | None -> print_endline "ERROR: computation did not complete"
