(* Use case 6 from the paper's introduction: run the CPU-intensive phase
   of a computation on a 32-node cluster, checkpoint it, and resume *all*
   of it on a single laptop for interactive analysis.

   The workload is ParGeant4 (TOP-C master/worker over MPICH2, resource
   managers included); after migration every process — master, workers,
   mpd daemons, mpirun — runs on node 0 with every socket reconnected
   through the discovery service.

   Run with:  dune exec examples/cluster_to_laptop.exe *)

let () =
  Apps.Registry.register_all ();
  let cluster = Simos.Cluster.create ~nodes:32 () in
  let rt = Dmtcp.Api.install cluster () in
  let engine = Simos.Cluster.engine cluster in

  (* dmtcp_checkpoint mpdboot -n 32; dmtcp_checkpoint mpirun ... *)
  ignore (Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpdboot" ~argv:[ "32" ]);
  Sim.Engine.run ~until:0.5 engine;
  ignore
    (Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpirun"
       ~argv:[ "mpich2"; "128"; "4"; "6100"; "apps:pargeant4"; "3000"; "200" ]);

  (* the CPU-intensive phase on the cluster *)
  Sim.Engine.run ~until:8.0 engine;
  let procs = List.length (Dmtcp.Runtime.hijacked_processes rt) in
  Printf.printf "running on the cluster: %d processes (128 workers + mpds + mpirun)\n" procs;

  Dmtcp.Api.checkpoint_now rt;
  Printf.printf "cluster-wide checkpoint: %.2f s, %s across %d images\n"
    (Dmtcp.Api.last_checkpoint_seconds rt)
    (Util.Units.pp_mb (fst (Dmtcp.Api.last_checkpoint_bytes rt)))
    (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.nprocs;

  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;

  (* take the images home: everything restarts on "the laptop" (node 0) *)
  let laptop = Dmtcp.Restart_script.remap script (fun _ -> 0) in
  Dmtcp.Api.restart rt laptop;
  Dmtcp.Api.await_restart rt;
  Printf.printf "restarted everything on one laptop in %.2f s\n"
    (Dmtcp.Api.last_restart_seconds rt);

  (* the computation finishes at home *)
  Simos.Cluster.run cluster;
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cluster 0)) "/result/pargeant4-6100"
  with
  | Some f -> Printf.printf "final result on the laptop: %s\n" (Simos.Vfs.read_all f)
  | None -> print_endline "ERROR: computation did not finish"
