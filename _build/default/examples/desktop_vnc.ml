(* The paper's TightVNC demonstration (§5.1): checkpoint a headless X11
   session — vncserver, window manager, and terminal — as one process
   tree, then restore it elsewhere.  Pipes between the processes were
   transparently promoted to socketpairs by the DMTCP wrapper, the xterm
   keeps its pty (terminal modes included), and the parent/child
   relationships survive via virtual pids.

   Run with:  dune exec examples/desktop_vnc.exe *)

let show_session rt label =
  Printf.printf "%s\n" label;
  List.iter
    (fun (node, pid, ps) ->
      match Dmtcp.Runtime.proc_of rt ~node ~pid with
      | Some p ->
        let fds =
          Hashtbl.fold
            (fun _ (d : Simos.Fdesc.t) acc -> Simos.Fdesc.kind_name d :: acc)
            p.Simos.Kernel.fdtable []
          |> List.sort_uniq compare |> String.concat ","
        in
        Printf.printf "  node%d pid=%-4d vpid=%-4d %-18s fds:[%s]\n" node pid
          ps.Dmtcp.Runtime.vpid
          (String.concat " " p.Simos.Kernel.cmdline)
          fds
      | None -> ())
    (Dmtcp.Runtime.hijacked_processes rt)

let () =
  Apps.Registry.register_all ();
  let cluster = Simos.Cluster.create ~nodes:3 () in
  let rt = Dmtcp.Api.install cluster () in
  let engine = Simos.Cluster.engine cluster in

  (* dmtcp_checkpoint vncserver ... spawns twm and an xterm under it *)
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"apps:desktop" ~argv:[ "tightvnc+twm" ]);
  Sim.Engine.run ~until:2.0 engine;
  show_session rt "VNC session before checkpoint:";

  Dmtcp.Api.checkpoint_now rt;
  Printf.printf "checkpointed the session in %.2f s (%s)\n"
    (Dmtcp.Api.last_checkpoint_seconds rt)
    (Util.Units.pp_mb (fst (Dmtcp.Api.last_checkpoint_bytes rt)));

  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;

  (* restore the whole session on another machine *)
  let script = Dmtcp.Restart_script.remap script (fun _ -> 2) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Sim.Engine.run ~until:(Simos.Cluster.now cluster +. 1.0) engine;
  show_session rt "VNC session after restart on node 2:";
  print_endline "(virtual pids unchanged; real pids fresh; sockets and ptys recreated)"
