(* Use cases 4 and 8 from the paper: debugging long-running jobs by
   checkpoint replay.  Interval checkpointing (--interval) saves an image
   every 2 simulated seconds; when the job later "hits a bug", we restart
   from the image taken just before it and replay deterministically into
   the bug as many times as we like — the "debug-recompile cycle" shrinks
   to a restart.

   Run with:  dune exec examples/debug_replay.exe *)

module W = Util.Codec.Writer
module R = Util.Codec.Reader

(* A long job that corrupts its accumulator at a specific iteration — the
   "bug" we want to replay. *)
module Buggy = struct
  type state = { iter : int; acc : int }

  let name = "example:buggy"

  let encode w st =
    W.uvarint w st.iter;
    W.varint w st.acc

  let decode r =
    let iter = R.uvarint r in
    let acc = R.varint r in
    { iter; acc }

  let init ~argv:_ = { iter = 0; acc = 0 }
  let bug_at = 700

  let step (ctx : Simos.Program.ctx) st =
    let st = { iter = st.iter + 1; acc = st.acc + st.iter } in
    let st = if st.iter = bug_at then { st with acc = -999999 } (* the bug *) else st in
    (* leave a trace of the last state so the "user" can inspect it *)
    if st.iter mod 100 = 0 || st.iter = bug_at then begin
      match ctx.open_file "/tmp/trace" with
      | Ok fd ->
        ignore (ctx.write_fd fd (Printf.sprintf "iter=%d acc=%d\n" st.iter st.acc));
        ctx.close_fd fd
      | Error _ -> ()
    end;
    if st.iter >= 2000 then Simos.Program.Exit 0 else Simos.Program.Compute (st, 10e-3)
end

let trace cluster node =
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cluster node)) "/tmp/trace" with
  | Some f ->
    let lines = String.split_on_char '\n' (String.trim (Simos.Vfs.read_all f)) in
    List.nth lines (List.length lines - 1)
  | None -> "(no trace)"

let () =
  Simos.Program.register (module Buggy);
  let cluster = Simos.Cluster.create ~nodes:2 () in
  let options = { Dmtcp.Options.default with Dmtcp.Options.interval = Some 2.0 } in
  let rt = Dmtcp.Api.install cluster ~options () in
  let engine = Simos.Cluster.engine cluster in

  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"example:buggy" ~argv:[]);

  (* let the job run; interval checkpoints happen automatically.  The bug
     corrupts the accumulator at iteration 700 (t ~= 7s). *)
  Sim.Engine.run ~until:6.9 engine;
  (* grab the most recent pre-bug image set *)
  let pre_bug = Dmtcp.Api.restart_script rt in
  Printf.printf "checkpoints so far: every 2 s; last image before the bug captured at t=%.1f\n"
    (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.started;

  Sim.Engine.run ~until:8.0 engine;
  Printf.printf "bug observed:   %s\n" (trace cluster 1);

  (* replay from the pre-bug image — twice, to show it is repeatable *)
  for attempt = 1 to 2 do
    Dmtcp.Api.kill_computation rt;
    Dmtcp.Api.restart rt pre_bug;
    Dmtcp.Api.await_restart rt;
    Sim.Engine.run ~until:(Simos.Cluster.now cluster +. 1.5) engine;
    Printf.printf "replay %d state: %s (deterministically re-entering the bug)\n" attempt
      (trace cluster 1)
  done;
  print_endline "the buggy window can now be single-stepped in a debugger, repeatedly"
