examples/cluster_to_laptop.ml: Apps Dmtcp List Printf Sim Simos Util
