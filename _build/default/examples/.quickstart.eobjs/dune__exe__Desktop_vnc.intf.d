examples/desktop_vnc.mli:
