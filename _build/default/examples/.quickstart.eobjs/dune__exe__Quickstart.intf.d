examples/quickstart.mli:
