examples/debug_replay.ml: Dmtcp List Printf Sim Simos String Util
