examples/safe_mode.mli:
