examples/quickstart.ml: Dmtcp Printf Sim Simos Util
