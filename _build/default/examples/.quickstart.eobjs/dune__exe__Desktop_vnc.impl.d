examples/desktop_vnc.ml: Apps Dmtcp Hashtbl List Printf Sim Simos String Util
