examples/safe_mode.ml: Apps Dmtcp List Printf Sim Simnet Simos String Util
