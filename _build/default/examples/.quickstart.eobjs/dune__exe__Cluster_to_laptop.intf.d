examples/cluster_to_laptop.mli:
