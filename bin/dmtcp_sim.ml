(* dmtcp_sim: command-line driver that regenerates every table and figure
   of the paper's evaluation, plus the ablations, on the simulated
   cluster. *)

open Cmdliner

let reps_arg =
  Arg.(value & opt int 3 & info [ "reps" ] ~docv:"N" ~doc:"Repetitions per measurement (paper: 10).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink process counts for a fast smoke run.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Also append the report to $(docv).")

let emit out text =
  print_string text;
  (match out with
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc text;
    output_string oc "\n";
    close_out oc
  | None -> ());
  flush stdout

(* ------------------------------------------------------------------ *)

let figure3 reps quick out =
  let apps = if quick then Some [ "bc"; "python"; "matlab"; "tightvnc+twm" ] else None in
  emit out (Harness.Fig3.to_text (Harness.Fig3.run ~reps ?apps ()))

let figure4 reps quick out =
  let scale = if quick then `Quick else `Full in
  emit out (Harness.Fig4.to_text (Harness.Fig4.run ~reps ~scale ()))

let figure5 reps quick out =
  let sizes = if quick then [ 16; 32 ] else [ 16; 32; 48; 64; 80; 96; 112; 128 ] in
  emit out (Harness.Fig5.to_text (Harness.Fig5.run ~reps ~sizes ()))

let figure6 reps quick out =
  ignore reps;
  let totals = if quick then [ 4.; 20. ] else [ 4.; 12.; 20.; 28.; 36.; 44.; 52.; 60.; 68. ] in
  let nprocs = if quick then 16 else 128 in
  emit out (Harness.Fig6.to_text (Harness.Fig6.run ~reps:2 ~totals_gb:totals ~nprocs ()))

let table1 reps quick out =
  let nprocs = if quick then 8 else 32 in
  emit out (Harness.Table1.to_text (Harness.Table1.run ~reps ~nprocs ()))

let runcms reps _quick out = emit out (Harness.Extras.runcms_text (Harness.Extras.runcms ~reps ()))

let sync_cost reps quick out =
  let nprocs = if quick then 8 else 32 in
  emit out (Harness.Extras.sync_text (Harness.Extras.sync_cost ~reps ~nprocs ()))

let ablations _reps quick out =
  emit out (Harness.Extras.forked_text (Harness.Extras.forked_ablation ()));
  emit out (Harness.Extras.incremental_text (Harness.Extras.incremental_ablation ()));
  emit out (Harness.Extras.algo_text (Harness.Extras.algo_ablation ()));
  let sizes = if quick then [ 8; 16 ] else [ 16; 64; 128 ] in
  emit out (Harness.Extras.coordinator_text (Harness.Extras.coordinator_ablation ~sizes ()));
  let pairs = if quick then [ 1; 2 ] else [ 1; 4; 8 ] in
  emit out (Harness.Extras.drain_text (Harness.Extras.drain_ablation ~pairs_list:pairs ()))

let all reps quick out =
  figure3 reps quick out;
  figure4 reps quick out;
  figure5 reps quick out;
  figure6 reps quick out;
  table1 reps quick out;
  runcms reps quick out;
  sync_cost reps quick out;
  ablations reps quick out

let list_apps () =
  Apps.Registry.register_all ();
  print_endline "Registered programs:";
  List.iter (fun name -> Printf.printf "  %s\n" name) (Simos.Program.registered_names ());
  print_endline "\nFigure-3 desktop profiles:";
  List.iter
    (fun (p : Apps.Desktop.profile) ->
      Printf.printf "  %-14s %6.1f MB, %d thread(s), %d child(ren)\n" p.Apps.Desktop.p_name
        p.Apps.Desktop.mb p.Apps.Desktop.threads
        (List.length p.Apps.Desktop.children))
    Apps.Desktop.figure3

let demo () =
  (* the README quickstart, as a subcommand *)
  Apps.Registry.register_all ();
  let cl = Simos.Cluster.create ~nodes:4 () in
  let rt = Dmtcp.Api.install cl () in
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"apps:desktop" ~argv:[ "python" ]);
  Sim.Engine.run ~until:1.0 (Simos.Cluster.engine cl);
  Dmtcp.Api.checkpoint_now rt;
  Printf.printf "checkpointed 1 process in %.3f s (image %s)\n"
    (Dmtcp.Api.last_checkpoint_seconds rt)
    (Util.Units.pp_mb (fst (Dmtcp.Api.last_checkpoint_bytes rt)));
  let script = Dmtcp.Api.restart_script rt in
  print_string (Dmtcp.Restart_script.to_text script);
  Dmtcp.Api.kill_computation rt;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 3) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Printf.printf "restarted on node 3 in %.3f s\n" (Dmtcp.Api.last_restart_seconds rt)

let torture seeds base bug replay keep =
  Chaos.Progs.ensure_registered ();
  (match bug with
  | Some "skip-drain" -> Dmtcp.Faults.bug_skip_drain := true
  | Some "drop-refill" -> Dmtcp.Faults.bug_drop_refill := true
  | Some other ->
    Printf.eprintf "unknown --bug %S (expected skip-drain or drop-refill)\n" other;
    exit 2
  | None -> ());
  let code =
    match replay with
    | Some seed ->
      (* replay one scenario, optionally restricted to a shrunk fault set *)
      let keep =
        match keep with
        | None -> None
        | Some "none" -> Some []
        | Some l -> (
          try Some (List.map int_of_string (String.split_on_char ',' l))
          with Failure _ ->
            Printf.eprintf "bad --keep %S (expected comma-separated indices or 'none')\n" l;
            exit 2)
      in
      let r = Chaos.Runner.run ?keep ~seed () in
      Printf.printf "%s\n" r.Chaos.Runner.r_desc;
      if Chaos.Runner.pass r then begin
        Printf.printf "PASS (ckpts %d, recoveries %d)\n" r.Chaos.Runner.r_ckpts
          r.Chaos.Runner.r_recoveries;
        0
      end
      else begin
        List.iter (Printf.printf "violation: %s\n") r.Chaos.Runner.r_violations;
        if r.Chaos.Runner.r_span_tail <> [] then begin
          print_endline "last protocol events:";
          List.iter (Printf.printf "  %s\n") r.Chaos.Runner.r_span_tail
        end;
        1
      end
    | None ->
      let summary =
        Chaos.Torture.run_seeds ~log:print_endline ~base ~count:seeds ()
      in
      print_string (Chaos.Torture.report summary);
      if Chaos.Torture.all_pass summary then 0 else 1
  in
  Dmtcp.Faults.reset ();
  exit code

(* The traced scenario is two canned runs back to back: the fixed
   checkpoint/restart protocol scenario, then the batch scheduler's
   preempt/fail/drain demo — so every category, "sched" included, has
   real events behind it.  The metrics snapshot is taken after both. *)
let trace_scenario incremental lazy_restore plugins =
  let events, _ = Harness.Trace_scenario.run ~incremental ~lazy_restore ~plugins () in
  let c = Trace.collector () in
  ignore
    (Trace.with_sink (Trace.collector_sink c) (fun () -> Chaos.Sched_demo.run ~faults:true ()));
  (events @ Trace.events c, Trace.Metrics.snapshot_text ())

let trace_run format node pid cat stage metrics check incremental lazy_restore plugins =
  if check then begin
    (* run the fixed scenario twice; the renderings must be byte-identical *)
    let e1, m1 = trace_scenario incremental lazy_restore plugins in
    let e2, m2 = trace_scenario incremental lazy_restore plugins in
    let j1 = Trace.jsonl e1 and j2 = Trace.jsonl e2 in
    if j1 = j2 && m1 = m2 then begin
      Printf.printf "deterministic: %d events, %d JSONL bytes, metrics snapshots equal\n"
        (List.length e1) (String.length j1);
      exit 0
    end
    else begin
      prerr_endline "NON-DETERMINISTIC: two runs of the fixed scenario differ";
      if j1 <> j2 then prerr_endline "  trace JSONL differs";
      if m1 <> m2 then prerr_endline "  metrics snapshot differs";
      exit 1
    end
  end
  else begin
    let events, msnap = trace_scenario incremental lazy_restore plugins in
    let filter = { Trace.f_node = node; f_pid = pid; f_cat = cat; f_prefix = stage } in
    let events = List.filter (Trace.matches filter) events in
    (match format with
    | "jsonl" -> print_string (Trace.jsonl events)
    | "text" -> print_string (Trace.text events)
    | other ->
      Printf.eprintf "unknown --format %S (expected text or jsonl)\n" other;
      exit 2);
    if metrics then begin
      print_newline ();
      print_string msnap
    end
  end

let inspect () =
  (* use case 5: the checkpoint image as the ultimate bug report — dump
     everything a frozen VNC session's images contain.  Incremental mode
     makes the second checkpoint a delta, so the dump also exercises
     peeking through a delta manifest to its base. *)
  Apps.Registry.register_all ();
  let cl = Simos.Cluster.create ~nodes:2 () in
  let options = { Dmtcp.Options.default with Dmtcp.Options.incremental = true } in
  let rt = Dmtcp.Api.install cl ~options () in
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"apps:desktop" ~argv:[ "tightvnc+twm" ]);
  Sim.Engine.run ~until:2.0 (Simos.Cluster.engine cl);
  Dmtcp.Api.checkpoint_now rt;
  Sim.Engine.run ~until:(Simos.Cluster.now cl +. 1.0) (Simos.Cluster.engine cl);
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  print_string (Dmtcp.Inspect.describe_checkpoint rt script)

(* canned deterministic store scenario: a dirty-page workload
   checkpointed across two generations (restart in between) plus an
   interval re-checkpoint at the second generation, so the catalog holds
   deduplicated generations for ls/stat/gc/verify to act on *)
let store_scenario () =
  Chaos.Progs.ensure_registered ();
  let cl = Simos.Cluster.create ~nodes:4 () in
  let options =
    {
      Dmtcp.Options.default with
      Dmtcp.Options.store = true;
      store_replicas = 2;
      keep_generations = 2;
      incremental = true;
    }
  in
  let rt = Dmtcp.Api.install cl ~options () in
  let run s = Sim.Engine.run ~until:(Simos.Cluster.now cl +. s) (Simos.Cluster.engine cl) in
  ignore (Dmtcp.Api.launch rt ~node:1 ~prog:"p:dirty" ~argv:[ "24"; "2"; "20000"; "/tmp/st" ]);
  run 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  run 0.5;
  Dmtcp.Api.checkpoint_now rt;
  run 0.5;
  Dmtcp.Api.checkpoint_now rt;
  Option.get (Dmtcp.Runtime.store rt)

let store_run action =
  let store = store_scenario () in
  match action with
  | "ls" ->
    Printf.printf "%-28s %-8s %3s %8s %8s %6s %5s %-9s %s\n" "NAME" "LINEAGE" "GEN" "REAL" "SIM"
      "BLOCKS" "DEPTH" "KIND" "PROGRAM";
    List.iter
      (fun (m : Store.manifest) ->
        let kind =
          if m.Store.m_compacted then "compacted"
          else if m.Store.m_base <> None then "delta"
          else "full"
        in
        Printf.printf "%-28s %-8s %3d %8d %8d %6d %5d %-9s %s\n" m.Store.m_name m.Store.m_lineage
          m.Store.m_generation m.Store.m_real_len m.Store.m_sim_bytes
          (List.length m.Store.m_blocks)
          (Store.chain_depth store ~name:m.Store.m_name)
          kind m.Store.m_program)
      (Store.manifests store)
  | "stat" ->
    let s = Store.stats store in
    Printf.printf "manifests          %d\n" (List.length (Store.manifests store));
    Printf.printf "unique blocks      %d\n" (Store.block_count store);
    Printf.printf "replicas / quorum  %d / %d (keep %d generations)\n" (Store.replicas store)
      (Store.quorum store) (Store.keep store);
    Printf.printf "blocks written     %d\n" s.Store.blocks_written;
    Printf.printf "blocks deduped     %d\n" s.Store.blocks_deduped;
    Printf.printf "blocks replicated  %d\n" s.Store.blocks_replicated;
    Printf.printf "blocks gc'd        %d\n" s.Store.blocks_gcd;
    Printf.printf "bytes written      %d\n" s.Store.bytes_written;
    Printf.printf "bytes deduped      %d\n" s.Store.bytes_deduped;
    Printf.printf "bytes reclaimed    %d\n" s.Store.bytes_reclaimed
  | "gc" ->
    let r = Store.gc ~keep:1 store in
    Printf.printf "gc --keep 1: dropped %d manifest(s), reclaimed %d block(s) / %d modeled bytes\n"
      r.Store.gc_manifests r.Store.gc_blocks r.Store.gc_bytes;
    Printf.printf "%d manifest(s), %d unique block(s) remain\n"
      (List.length (Store.manifests store))
      (Store.block_count store)
  | "verify" -> (
    match Store.verify store with
    | [] ->
      Printf.printf "catalog healthy: %d manifest(s), %d unique block(s), all replicated\n"
        (List.length (Store.manifests store))
        (Store.block_count store)
    | problems ->
      List.iter (Printf.printf "PROBLEM: %s\n") problems;
      exit 1)
  | other ->
    Printf.eprintf "unknown store action %S (expected ls, stat, gc or verify)\n" other;
    exit 2

(* Batch scheduler over the canned three-job scenario: a stream pair and
   a long counter job get preempted by a six-node arrival, a node
   fail-stops under a running job, and a node is drained — every
   displacement bottoms out in checkpoint/restart through the store. *)
let sched_run action no_faults =
  match action with
  | "run" ->
    (* collect the run's full trace and print a digest of its JSONL
       rendering: two invocations must print identical lines, which is
       what the CI sched smoke diffs *)
    let coll = Trace.collector () in
    let faulted =
      Trace.with_sink (Trace.collector_sink coll) (fun () ->
          Chaos.Sched_demo.run ~faults:(not no_faults) ())
    in
    List.iter print_endline (Chaos.Sched_demo.summary faulted);
    let jsonl = Trace.jsonl (Trace.events coll) in
    Printf.printf "trace digest: %08lx (%d events, %d sched)\n" (Util.Crc32.digest jsonl)
      (List.length (Trace.events coll))
      (List.length
         (List.filter (fun (e : Trace.event) -> e.Trace.cat = "sched") (Trace.events coll)));
    if no_faults then exit (if faulted.Chaos.Sched_demo.d_unfinished = 0 then 0 else 1)
    else begin
      (* judge the faulted run against its own no-fault reference *)
      let reference = Chaos.Sched_demo.run ~faults:false () in
      match Chaos.Sched_demo.check ~reference faulted with
      | [] ->
        print_endline "all jobs finished bit-identically to the no-fault reference";
        exit 0
      | violations ->
        List.iter (Printf.printf "violation: %s\n") violations;
        exit 1
    end
  | "status" ->
    let r = Chaos.Sched_demo.run ~faults:(not no_faults) () in
    List.iter print_endline (Sched.Scheduler.status_lines r.Chaos.Sched_demo.d_sched);
    exit (if r.Chaos.Sched_demo.d_unfinished = 0 then 0 else 1)
  | "demo1k" ->
    (* the 1000-small-job scale scenario: preemption + self-healing +
       drain, judged bit-identical against its own no-fault reference;
       the op queues must actually overlap work (peak >= 8) *)
    let faulted = Chaos.Sched_demo1k.run ~faults:(not no_faults) () in
    List.iter print_endline (Chaos.Sched_demo1k.summary faulted);
    if no_faults then exit (if faulted.Chaos.Sched_demo1k.k_unfinished = 0 then 0 else 1)
    else begin
      let reference = Chaos.Sched_demo1k.run ~faults:false () in
      let peak = Sched.Scheduler.peak_ops_inflight faulted.Chaos.Sched_demo1k.k_sched in
      let violations =
        Chaos.Sched_demo1k.check ~reference faulted
        @
        if peak < 8 then
          [ Printf.sprintf "only %d op(s) ever ran concurrently (want >= 8)" peak ]
        else []
      in
      match violations with
      | [] ->
        print_endline "all 1000 jobs finished bit-identically to the no-fault reference";
        exit 0
      | violations ->
        List.iter (Printf.printf "violation: %s\n") violations;
        exit 1
    end
  | "chaos" ->
    let failures = Chaos.Sched_fault.run_seeds ~log:print_endline ~base:0 ~count:25 () in
    if failures = [] then begin
      print_endline "25/25 scheduler chaos seeds pass";
      exit 0
    end
    else begin
      List.iter
        (fun r ->
          Printf.printf "seed %d FAILED (%s):\n" r.Chaos.Sched_fault.r_seed
            (Chaos.Sched_fault.describe r.Chaos.Sched_fault.r_plan);
          List.iter (Printf.printf "  %s\n") r.Chaos.Sched_fault.r_violations)
        failures;
      exit 1
    end
  | other ->
    Printf.eprintf "unknown sched action %S (expected run, status, demo1k or chaos)\n" other;
    exit 2

(* ------------------------------------------------------------------ *)

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ reps_arg $ quick_arg $ out_arg)

(* the plugin registry and the open-world heuristic scenarios *)
let plugins_run action off =
  Dmtcp.Plugins.ensure_registered ();
  match action with
  | "ls" ->
    (* enablement as the environment would configure it (DMTCP_PLUGINS;
       default: ext-sock only, matching the pre-plugin behavior) *)
    (let opts =
       try Dmtcp.Options.of_getenv Sys.getenv_opt
       with Invalid_argument msg ->
         Printf.eprintf "%s\n" msg;
         exit 2
     in
     Plugin.set_enabled opts.Dmtcp.Options.plugins);
    Printf.printf "%-16s %-3s %5s  %s\n" "NAME" "ON" "HOOKS" "SITES";
    List.iter
      (fun (p : Plugin.t) ->
        Printf.printf "%-16s %-3s %5d  %s\n" p.Plugin.p_name
          (if Plugin.is_enabled p.Plugin.p_name then "*" else "")
          (List.length p.Plugin.p_hooks)
          (String.concat ", " (List.map fst p.Plugin.p_hooks));
        Printf.printf "%-16s      %s\n" "" p.Plugin.p_doc)
      (Plugin.registered ())
  | "run" ->
    (* one verdict line per heuristic; ci.sh diffs --off against the
       default to prove each plugin changes the observable outcome *)
    List.iter
      (fun name ->
        let v = Chaos.Plugin_fault.run_heuristic ~name ~plugins_on:(not off) in
        Printf.printf "%-10s %s\n" name v)
      Chaos.Plugin_fault.heuristic_names
  | other ->
    Printf.eprintf "unknown action %S (expected ls or run)\n" other;
    exit 2

(* The rank/proxy split, end to end: launch the Jacobi stencil on the
   chosen transport, checkpoint it mid-exchange, kill the computation,
   restart from the images and run to completion.  The printed lines —
   result bytes, image shape, trace digest — are deterministic, which is
   what the CI proxy smoke diffs across two invocations. *)
let mpi_run transport =
  let module Common = Harness.Common in
  let kind, w_extra, options =
    match transport with
    | "direct" -> (Common.Direct, "direct" :: [ "96"; "4"; "10"; "0.08" ], Dmtcp.Options.default)
    | "proxy" | "proxied" ->
      ( Common.Proxy,
        [ "96"; "4"; "10"; "0.08" ],
        { Dmtcp.Options.default with Dmtcp.Options.plugins = [ "ext-sock"; "mpi-proxy" ] } )
    | other ->
      Printf.eprintf "unknown --transport %S (expected direct or proxy)\n" other;
      exit 2
  in
  let base_port = Common.base_port in
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  let col = Trace.collector () in
  let sink = Trace.collector_sink col in
  Trace.attach sink;
  Common.start_workload env
    {
      Common.w_name = "stencil";
      w_kind = kind;
      w_prog = Apps.Stencil.stencil_prog;
      w_nprocs = 8;
      w_rpn = 2;
      w_extra;
      w_warmup = 0.05;
    };
  Common.run_for env 0.1;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let image_bytes = fst (Dmtcp.Api.last_checkpoint_bytes env.Common.rt) in
  let script = Dmtcp.Api.restart_script env.Common.rt in
  let estab, drained = Chaos.Proxy_fault.image_stats env script in
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let out_path = Printf.sprintf "/result/stencil-%d" base_port in
  let result () =
    match
      Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl 0)) out_path
    with
    | Some f -> Some (Simos.Vfs.read_all f)
    | None -> None
  in
  let deadline = Simos.Cluster.now env.Common.cl +. 120. in
  while result () = None && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.05
  done;
  Trace.detach sink;
  let out = result () in
  Common.teardown env;
  match out with
  | None ->
    prerr_endline "the restarted stencil never produced a result";
    exit 1
  | Some r ->
    Printf.printf "%-6s %s\n" transport (String.trim r);
    Printf.printf "rank images: %s total, %d established socket spec(s), %d drained byte(s)\n"
      (Util.Units.pp_mb image_bytes) estab drained;
    let jsonl = Trace.jsonl (Trace.events col) in
    Printf.printf "trace digest: %08lx (%d events)\n" (Util.Crc32.digest jsonl)
      (List.length (Trace.events col))

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mpi_chaos scenario =
  let names =
    match scenario with
    | "all" -> Chaos.Proxy_fault.scenario_names
    | name when List.mem name Chaos.Proxy_fault.scenario_names -> [ name ]
    | other ->
      Printf.eprintf "unknown scenario %S (expected all%s)\n" other
        (String.concat ""
           (List.map (fun n -> ", " ^ n) Chaos.Proxy_fault.scenario_names));
      exit 2
  in
  let verdicts = List.map (fun name -> Chaos.Proxy_fault.run_scenario ~name) names in
  List.iter print_endline verdicts;
  let clean = List.for_all (fun v -> contains_sub v "bit-identical") verdicts in
  exit (if clean then 0 else 1)

let mpi_dispatch action arg =
  match action with
  | "run" -> mpi_run (Option.value arg ~default:"proxy")
  | "chaos" -> mpi_chaos (Option.value arg ~default:"all")
  | other ->
    Printf.eprintf "unknown mpi action %S (expected run or chaos)\n" other;
    exit 2

let () =
  let doc = "Reproduce the DMTCP paper's evaluation on a simulated cluster" in
  let info = Cmd.info "dmtcp_sim" ~version:"1.0" ~doc in
  let cmds =
    [
      cmd "figure3" "Figure 3: 21 desktop applications (1 node, gzip)" figure3;
      cmd "figure4" "Figure 4: distributed applications on 32 nodes" figure4;
      cmd "figure5" "Figure 5: ParGeant4 scaling, local disk and SAN/NFS" figure5;
      cmd "figure6" "Figure 6: timings as memory grows (no compression)" figure6;
      cmd "table1" "Table 1: checkpoint/restart stage breakdown (NAS/MG)" table1;
      cmd "runcms" "Sec 5.1: the 680 MB runCMS image" runcms;
      cmd "sync-cost" "Sec 5.2: cost of sync(2) after checkpoint" sync_cost;
      cmd "ablation" "Design-choice ablations (forked, compression, coordinator, drain)" ablations;
      cmd "all" "Run every experiment" all;
      Cmd.v (Cmd.info "list-apps" ~doc:"List registered programs and profiles")
        Term.(const list_apps $ const ());
      Cmd.v
        (Cmd.info "demo" ~doc:"Quickstart: checkpoint a desktop app and migrate it to another node")
        Term.(const demo $ const ());
      Cmd.v
        (Cmd.info "inspect"
           ~doc:"Use case 5: dump a checkpointed VNC session's images as a bug report")
        Term.(const inspect $ const ());
      (let action_arg =
         Arg.(
           required
           & pos 0 (some string) None
           & info [] ~docv:"ACTION" ~doc:"One of ls, stat, gc or verify.")
       in
       Cmd.v
         (Cmd.info "store"
            ~doc:"Inspect the replicated content-addressed checkpoint store over a canned \
                  two-generation dirty-page scenario")
         Term.(const store_run $ action_arg));
      (let action_arg =
         Arg.(
           required
           & pos 0 (some string) None
           & info [] ~docv:"ACTION" ~doc:"One of run, status or chaos.")
       in
       let no_faults_arg =
         Arg.(
           value & flag
           & info [ "no-faults" ]
               ~doc:"Replay the same submissions without the node failure and the drain.")
       in
       Cmd.v
         (Cmd.info "sched"
            ~doc:"Checkpoint-driven batch scheduler: run the canned three-job \
                  preempt/fail/drain scenario ('run' verifies it against a no-fault \
                  reference, 'status' prints the job table, 'chaos' plays 25 random seeds)")
         Term.(const sched_run $ action_arg $ no_faults_arg));
      (let seeds_arg =
         Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to torture.")
       in
       let base_arg =
         Arg.(value & opt int 0 & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the block.")
       in
       let bug_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "bug" ] ~docv:"BUG"
               ~doc:"Inject a known protocol bug (skip-drain or drop-refill) to prove the harness \
                     catches it.")
       in
       let replay_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "replay" ] ~docv:"SEED" ~doc:"Replay one scenario instead of a seed block.")
       in
       let keep_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "keep" ] ~docv:"I,J,..."
               ~doc:"With --replay: comma-separated fault indices to keep ('none' for no faults), \
                     as printed by a shrunk reproducer.")
       in
       Cmd.v
         (Cmd.info "torture"
            ~doc:"Chaos harness: fault-injected checkpoint torture over a block of seeds, with \
                  failure shrinking")
         Term.(const torture $ seeds_arg $ base_arg $ bug_arg $ replay_arg $ keep_arg));
      (let action_arg =
         Arg.(
           required
           & pos 0 (some string) None
           & info [] ~docv:"ACTION" ~doc:"One of ls or run.")
       in
       let off_arg =
         Arg.(
           value & flag
           & info [ "off" ]
               ~doc:"With run: leave the heuristic plugins disabled (ext-sock only), so the \
                     verdicts show what each heuristic changes.")
       in
       Cmd.v
         (Cmd.info "plugins"
            ~doc:"Plugin registry: 'ls' lists the registered hook plugins (hook counts, \
                  enablement), 'run' plays the three open-world heuristic scenarios and prints \
                  one verdict line each")
         Term.(const plugins_run $ action_arg $ off_arg));
      (let action_arg =
         Arg.(
           required
           & pos 0 (some string) None
           & info [] ~docv:"ACTION" ~doc:"One of run or chaos.")
       in
       let arg_arg =
         Arg.(
           value
           & pos 1 (some string) None
           & info [] ~docv:"ARG"
               ~doc:"For run: the transport (direct or proxy; default proxy).  For chaos: the \
                     scenario (mid-allreduce, mid-halo or all; default all).")
       in
       Cmd.v
         (Cmd.info "mpi"
            ~doc:"MPI-via-proxies subsystem: 'run' plays a checkpoint/kill/restart cycle of the \
                  Jacobi stencil on the chosen transport and prints the result, rank-image \
                  shape and trace digest; 'chaos' plays the kill-mid-collective scenarios and \
                  prints one verdict line each")
         Term.(const mpi_dispatch $ action_arg $ arg_arg));
      (let format_arg =
         Arg.(
           value & opt string "text"
           & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or jsonl.")
       in
       let node_arg =
         Arg.(
           value & opt (some int) None
           & info [ "node" ] ~docv:"N" ~doc:"Only events from node $(docv).")
       in
       let pid_arg =
         Arg.(
           value & opt (some int) None & info [ "pid" ] ~docv:"P" ~doc:"Only events from pid $(docv).")
       in
       let cat_arg =
         Arg.(
           value & opt (some string) None
           & info [ "cat" ] ~docv:"CAT"
               ~doc:"Only events in category $(docv) (sim, kernel, net, storage, dmtcp, store, \
                     sched).")
       in
       let stage_arg =
         Arg.(
           value & opt (some string) None
           & info [ "stage" ] ~docv:"PREFIX" ~doc:"Only events whose name starts with $(docv).")
       in
       let metrics_arg =
         Arg.(value & flag & info [ "metrics" ] ~doc:"Also print the metrics snapshot.")
       in
       let check_arg =
         Arg.(
           value & flag
           & info [ "check-determinism" ]
               ~doc:"Run the scenario twice and fail unless traces are byte-identical.")
       in
       let incremental_arg =
         Arg.(
           value & flag
           & info [ "incremental" ]
               ~doc:"Use incremental + forked checkpointing: chain two delta checkpoints onto \
                     the full base before the restart.")
       in
       let lazy_arg =
         Arg.(
           value & flag
           & info [ "lazy" ]
               ~doc:"Use demand-paged lazy restore: the traced restart resumes after the hot \
                     set and drains cold pages through the background prefetcher.")
       in
       let plugins_arg =
         Arg.(
           value & flag
           & info [ "plugins" ]
               ~doc:"Enable every built-in heuristic plugin (ext-sock, blacklist-ports, proc-fd, \
                     ext-shm): the trace then carries the deterministic plugin/<name>/<site> \
                     spans.")
       in
       Cmd.v
         (Cmd.info "trace"
            ~doc:"Trace a fixed checkpoint/restart scenario (text or JSONL), with filtering and a \
                  determinism self-check")
         Term.(
           const trace_run $ format_arg $ node_arg $ pid_arg $ cat_arg $ stage_arg $ metrics_arg
           $ check_arg $ incremental_arg $ lazy_arg $ plugins_arg));
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
