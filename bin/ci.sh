#!/bin/sh
# Repository CI gate: full build + the tier-1 test suite + a chaos smoke.
#
# The torture smoke runs the first 25 seeds of the pinned corpus (the
# same block test_chaos.exe pins); widen with e.g. CHAOS_SEEDS=200 to
# match the nightly sweep.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== trace determinism: fixed scenario, two runs, byte-identical =="
dune exec bin/dmtcp_sim.exe -- trace --check-determinism

echo "== bench smoke (quick scale, micro layer) =="
BENCH_SCALE=quick BENCH_SECTIONS=micro dune exec bench/main.exe > /dev/null

echo "== chaos smoke: 25-seed torture =="
dune exec bin/dmtcp_sim.exe -- torture --seeds "${CHAOS_SEEDS:-25}"

echo "CI OK"
