#!/bin/sh
# Repository CI gate: full build + the tier-1 test suite + a chaos smoke.
#
# The torture smoke runs the first 25 seeds of the pinned corpus (the
# same block test_chaos.exe pins); widen with e.g. CHAOS_SEEDS=200 to
# match the nightly sweep.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== trace determinism: fixed scenario, two runs, byte-identical =="
dune exec bin/dmtcp_sim.exe -- trace --check-determinism

echo "== incremental determinism: delta-chain scenario (forked + incremental), two runs =="
# Same scenario with the incremental/forked fast path on: three
# checkpoints chain two deltas onto a full image before the kill, so
# the restart resolves a depth-2 chain -- and must still be
# byte-identical across runs.
dune exec bin/dmtcp_sim.exe -- trace --incremental --check-determinism

echo "== lazy-restart determinism: demand-paged restore scenario, two runs =="
# Lazy restore moves modeled time only (residency never changes page
# contents), so a restart that resumes after the hot set and drains
# cold pages through the prefetcher must trace byte-identical too.
dune exec bin/dmtcp_sim.exe -- trace --lazy --check-determinism

echo "== plugin determinism: every heuristic plugin on, two runs =="
# The plugin/<name>/<site> spans join the trace stream; dispatch order
# is registration order, so the traced cycle must stay byte-identical
# across runs with every built-in heuristic enabled.
dune exec bin/dmtcp_sim.exe -- trace --plugins --check-determinism

echo "== plugin smoke: registry listing + heuristic verdict diff =="
# Each heuristic scenario must change its verdict when its plugin is
# enabled: blacklisted DNS degrades instead of staying live, the /proc
# fd reads the restarted pid instead of a stale one, the NSCD app
# detects the zeroed segment instead of trusting resurrected cache.
mkdir -p _artifacts
dune exec bin/dmtcp_sim.exe -- plugins ls
dune exec bin/dmtcp_sim.exe -- plugins run > _artifacts/plugins_on.txt
dune exec bin/dmtcp_sim.exe -- plugins run --off > _artifacts/plugins_off.txt
cat _artifacts/plugins_on.txt
if diff -q _artifacts/plugins_on.txt _artifacts/plugins_off.txt > /dev/null; then
  echo "FAIL: heuristic verdicts identical with plugins on and off." >&2
  exit 1
fi
grep -q "degraded" _artifacts/plugins_on.txt || { echo "FAIL: blacklist/extshm did not degrade with plugins on." >&2; exit 1; }
grep -q "PROC OK" _artifacts/plugins_on.txt || { echo "FAIL: proc-fd did not re-point with plugins on." >&2; exit 1; }
grep -q "dns:1200 live" _artifacts/plugins_off.txt || { echo "FAIL: dns pair did not stay live with plugins off." >&2; exit 1; }
grep -q "PROC STALE" _artifacts/plugins_off.txt || { echo "FAIL: /proc fd unexpectedly fresh with plugins off." >&2; exit 1; }

echo "== store smoke: catalog verify over the canned two-generation scenario =="
dune exec bin/dmtcp_sim.exe -- store verify

echo "== bench smoke (quick scale, micro layer) =="
# Emits the machine-readable artifact, enforces the compression-shape
# invariants (text halves, random expands <= 1%) and the store dedup
# shape (a 1-of-16-dirty generation ships <= 1/8 of the image), then
# checks that the deterministic ratio records still match the committed
# baseline -- timings are machine-dependent and excluded from the
# comparison.
mkdir -p _artifacts
BENCH_SCALE=quick BENCH_SECTIONS=micro BENCH_ASSERT=1 \
  BENCH_JSON=_artifacts/bench_micro.json dune exec bench/main.exe > /dev/null
grep '"kind": "ratio"' _artifacts/bench_micro.json > _artifacts/bench_ratios.json
if ! diff -u BENCH_micro.json _artifacts/bench_ratios.json; then
  echo "FAIL: deterministic bench ratios diverged from BENCH_micro.json." >&2
  echo "If the encoder change is intentional, refresh the baseline with:" >&2
  echo "  cp _artifacts/bench_ratios.json BENCH_micro.json" >&2
  exit 1
fi
echo "bench ratios match committed BENCH_micro.json"

echo "== sched smoke: canned preempt/fail/drain scenario, deterministic trace digest =="
# The canned three-job scenario exercises one preemption, one node loss
# and one drain, and must (a) finish every job bit-identical to its
# no-fault reference and (b) produce a byte-identical trace across two
# invocations.
dune exec bin/dmtcp_sim.exe -- sched run > _artifacts/sched_run_1.txt
dune exec bin/dmtcp_sim.exe -- sched run > _artifacts/sched_run_2.txt
if ! diff -u _artifacts/sched_run_1.txt _artifacts/sched_run_2.txt; then
  echo "FAIL: sched scenario is non-deterministic across two runs." >&2
  exit 1
fi
cat _artifacts/sched_run_1.txt

echo "== sched scale smoke: 1000-job demo under chaos, deterministic =="
# 1000 single-node jobs through preemption + node loss + drain on the
# per-job op queues: every job must finish bit-identical to the
# no-fault reference, at least 8 ops must overlap in flight, and two
# invocations must print byte-identical summaries.
dune exec bin/dmtcp_sim.exe -- sched demo1k > _artifacts/sched_demo1k_1.txt
dune exec bin/dmtcp_sim.exe -- sched demo1k > _artifacts/sched_demo1k_2.txt
if ! diff -u _artifacts/sched_demo1k_1.txt _artifacts/sched_demo1k_2.txt; then
  echo "FAIL: 1000-job demo is non-deterministic across two runs." >&2
  exit 1
fi
cat _artifacts/sched_demo1k_1.txt

echo "== mpi proxy smoke: stencil ckpt/restart cycle on the proxy backend, deterministic =="
# The rank/proxy split: checkpoint the stencil mid-run on the proxy
# backend, kill, restart from the images and run out.  Two invocations
# must print byte-identical result/image-shape/trace-digest lines, and
# the rank images must carry no live socket state and nothing drained —
# that is the point of the split.
dune exec bin/dmtcp_sim.exe -- mpi run proxy > _artifacts/mpi_proxy_1.txt
dune exec bin/dmtcp_sim.exe -- mpi run proxy > _artifacts/mpi_proxy_2.txt
if ! diff -u _artifacts/mpi_proxy_1.txt _artifacts/mpi_proxy_2.txt; then
  echo "FAIL: proxy-backend mpi cycle is non-deterministic across two runs." >&2
  exit 1
fi
cat _artifacts/mpi_proxy_1.txt
grep -q "0 established socket spec(s), 0 drained byte(s)" _artifacts/mpi_proxy_1.txt \
  || { echo "FAIL: proxy-backend rank images carry socket state." >&2; exit 1; }

echo "== chaos smoke: 25-seed torture + 25-seed scheduler corpus =="
dune exec bin/dmtcp_sim.exe -- torture --seeds "${CHAOS_SEEDS:-25}"
dune exec bin/dmtcp_sim.exe -- sched chaos

echo "CI OK"
