(* The tracing/metrics layer: emitter gating, sinks, filtering,
   deterministic rendering (golden file), queries, the metrics registry,
   and end-to-end trace determinism across identical chaos runs. *)

let check = Alcotest.check

let ev ?(node = -1) ?(pid = -1) ~cat ~name ?(args = []) ~time kind =
  { Trace.time; node; pid; cat; name; kind; args }

let sample_events =
  [
    ev ~time:0.5 ~cat:"sim" ~name:"boot" Trace.Instant;
    ev ~time:1.051010125 ~node:0 ~pid:101 ~cat:"dmtcp" ~name:"coord/ckpt-start"
      ~args:[ ("participants", "9") ]
      Trace.Instant;
    ev ~time:1.051010125 ~node:1 ~pid:204 ~cat:"dmtcp" ~name:"ckpt/drain" (Trace.Span 0.0021);
    ev ~time:1.06 ~node:1 ~pid:204 ~cat:"net" ~name:"seg/send"
      ~args:[ ("dst", "2"); ("len", "1448") ]
      Trace.Instant;
    ev ~time:1.2 ~node:2 ~pid:301 ~cat:"dmtcp" ~name:"mgr/drained-bytes" (Trace.Counter 8192.);
    ev ~time:2.0 ~node:2 ~pid:301 ~cat:"storage" ~name:"write"
      ~args:[ ("dev", "disk"); ("bytes", "65536") ]
      Trace.Instant;
    (* one scheduler preemption cycle: a high-priority arrival displaces
       a running job, which checkpoints, requeues and later restarts *)
    ev ~time:2.5 ~cat:"sched" ~name:"sched/submit"
      ~args:[ ("job", "2"); ("name", "big"); ("nodes", "6"); ("prio", "5") ]
      Trace.Instant;
    ev ~time:2.5 ~cat:"sched" ~name:"sched/preempt"
      ~args:[ ("victim", "1"); ("by", "2") ]
      Trace.Instant;
    ev ~time:2.73 ~cat:"sched" ~name:"sched/ckpt-saved"
      ~args:[ ("job", "1"); ("images", "2") ]
      Trace.Instant;
    ev ~time:2.74 ~cat:"sched" ~name:"sched/place"
      ~args:[ ("job", "2"); ("alloc", "2,3,4,5,6,7") ]
      Trace.Instant;
    ev ~time:5.81 ~cat:"sched" ~name:"sched/restart-recovery"
      ~args:[ ("job", "1") ]
      (Trace.Span 0.31);
  ]

(* ------------------------------------------------------------------ *)

let test_emitters_off_are_noops () =
  Alcotest.(check bool) "off by default" false (Trace.on ());
  (* must not raise, must not leak anywhere observable *)
  Trace.span ~cat:"dmtcp" ~name:"x" ~time:1. ~dur:0.1 ();
  Trace.instant ~cat:"sim" ~name:"y" ~time:1. ();
  Trace.counter ~cat:"net" ~name:"z" ~time:1. 5.;
  let c = Trace.collector () in
  check Alcotest.int "nothing collected" 0 (List.length (Trace.events c))

let test_collector_and_nesting () =
  let outer = Trace.collector () in
  let inner = Trace.collector () in
  Trace.with_sink (Trace.collector_sink outer) (fun () ->
      Trace.instant ~cat:"sim" ~name:"a" ~time:1. ();
      Trace.with_sink (Trace.collector_sink inner) (fun () ->
          Alcotest.(check bool) "on with sinks" true (Trace.on ());
          Trace.instant ~cat:"sim" ~name:"b" ~time:2. ());
      Trace.instant ~cat:"sim" ~name:"c" ~time:3. ());
  Alcotest.(check bool) "off after with_sink" false (Trace.on ());
  check Alcotest.int "outer saw all three" 3 (List.length (Trace.events outer));
  check (Alcotest.list Alcotest.string) "inner saw only the nested one" [ "b" ]
    (List.map (fun e -> e.Trace.name) (Trace.events inner))

let test_filter () =
  let f = { Trace.no_filter with Trace.f_cat = Some "dmtcp"; f_prefix = Some "ckpt/" } in
  let hits = List.filter (Trace.matches f) sample_events in
  check (Alcotest.list Alcotest.string) "cat+prefix" [ "ckpt/drain" ]
    (List.map (fun e -> e.Trace.name) hits);
  let f = { Trace.no_filter with Trace.f_node = Some 2 } in
  check Alcotest.int "node filter" 2 (List.length (List.filter (Trace.matches f) sample_events));
  let f = { Trace.no_filter with Trace.f_pid = Some 101 } in
  check Alcotest.int "pid filter" 1 (List.length (List.filter (Trace.matches f) sample_events))

let test_ring_keeps_tail_per_node () =
  let r = Trace.ring ~per_node:3 ~cat:"dmtcp" () in
  Trace.with_sink (Trace.ring_sink r) (fun () ->
      for i = 1 to 10 do
        Trace.instant ~node:1 ~pid:9 ~cat:"dmtcp"
          ~name:(Printf.sprintf "e%d" i)
          ~time:(float_of_int i) ();
        (* wrong category: must be ignored *)
        Trace.instant ~node:1 ~pid:9 ~cat:"net" ~name:"noise" ~time:(float_of_int i) ()
      done;
      Trace.instant ~node:0 ~pid:5 ~cat:"dmtcp" ~name:"solo" ~time:99. ());
  match Trace.ring_tails r with
  | [ (0, [ solo ]); (1, tail) ] ->
    check Alcotest.string "other node kept" "solo" solo.Trace.name;
    check (Alcotest.list Alcotest.string) "last three, oldest first" [ "e8"; "e9"; "e10" ]
      (List.map (fun e -> e.Trace.name) tail)
  | _ -> Alcotest.fail "unexpected ring shape"

let test_jsonl_shape () =
  let j = Trace.jsonl [ List.nth sample_events 2 ] in
  check Alcotest.string "span line"
    "{\"t\":1.051010125,\"node\":1,\"pid\":204,\"cat\":\"dmtcp\",\"name\":\"ckpt/drain\",\"k\":\"span\",\"dur\":0.002100000}\n"
    j;
  (* node/pid omitted when unset *)
  let j = Trace.jsonl [ List.hd sample_events ] in
  check Alcotest.string "instant line, no scope"
    "{\"t\":0.500000000,\"cat\":\"sim\",\"name\":\"boot\",\"k\":\"inst\"}\n" j

let test_text_golden () =
  (* the human rendering is part of the tool's contract: byte-compare
     against the checked-in golden file *)
  let got = Trace.text sample_events in
  let ic = open_in "trace_golden.txt" in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  check Alcotest.string "golden text" want got

let test_query_stage_stats () =
  let evs =
    [
      ev ~time:1. ~cat:"dmtcp" ~name:"ckpt/write" (Trace.Span 0.2);
      ev ~time:2. ~cat:"dmtcp" ~name:"ckpt/write" (Trace.Span 0.4);
      ev ~time:3. ~cat:"dmtcp" ~name:"ckpt/drain" (Trace.Span 0.1);
      ev ~time:4. ~cat:"other" ~name:"ckpt/write" (Trace.Span 9.9);
      ev ~time:5. ~cat:"dmtcp" ~name:"ckpt/write" Trace.Instant;
    ]
  in
  match Trace.Query.stage_stats evs with
  | [ ("ckpt/drain", d); ("ckpt/write", w) ] ->
    check Alcotest.int "two write spans" 2 (Util.Stats.count w);
    check (Alcotest.float 1e-9) "mean write" 0.3 (Util.Stats.mean w);
    check (Alcotest.float 1e-9) "mean drain" 0.1 (Util.Stats.mean d)
  | _ -> Alcotest.fail "unexpected stage stats"

let test_query_counter_total () =
  let evs =
    [
      ev ~time:1. ~cat:"dmtcp" ~name:"mgr/drained-bytes" (Trace.Counter 100.);
      ev ~time:2. ~cat:"dmtcp" ~name:"mgr/drained-bytes" (Trace.Counter 28.);
      ev ~time:3. ~cat:"dmtcp" ~name:"other" (Trace.Counter 5.);
    ]
  in
  check (Alcotest.float 1e-9) "summed" 128.
    (Trace.Query.counter_total ~cat:"dmtcp" ~name:"mgr/drained-bytes" evs)

let test_metrics_registry () =
  Trace.Metrics.reset ();
  let c = Trace.Metrics.counter "t.count" in
  let g = Trace.Metrics.gauge "t.gauge" in
  let h = Trace.Metrics.histogram "t.hist" in
  Trace.Metrics.incr c;
  Trace.Metrics.add c 4.;
  Trace.Metrics.set g 7.5;
  Trace.Metrics.observe h 1.;
  Trace.Metrics.observe h 3.;
  let snap = Trace.Metrics.snapshot_text () in
  let again = Trace.Metrics.counter "t.count" in
  Trace.Metrics.incr again;
  let snap2 = Trace.Metrics.snapshot_text () in
  Alcotest.(check bool) "name interned to same instrument" true (snap <> snap2);
  List.iter
    (fun needle ->
      let n = String.length needle and hlen = String.length snap in
      let rec go i = i + n <= hlen && (String.sub snap i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "snapshot mentions %S" needle) true (go 0))
    [ "t.count"; "5"; "t.gauge"; "7.5"; "t.hist"; "count=2"; "mean=2" ];
  Trace.Metrics.reset ();
  let c' = Trace.Metrics.counter "t.count" in
  Trace.Metrics.incr c';
  Alcotest.(check bool) "reset clears values" true (Trace.Metrics.snapshot_text () <> snap)

(* same chaos seed, two full runs: the protocol trace must be
   byte-identical — this is what makes `torture --replay` trustworthy *)
let test_chaos_trace_deterministic () =
  Chaos.Progs.ensure_registered ();
  let capture () =
    let c = Trace.collector () in
    let r = Trace.with_sink (Trace.collector_sink c) (fun () -> Chaos.Runner.run ~seed:5 ()) in
    (r, Trace.jsonl (Trace.events c))
  in
  let r1, j1 = capture () in
  let r2, j2 = capture () in
  check (Alcotest.list Alcotest.string) "same verdict" r1.Chaos.Runner.r_violations
    r2.Chaos.Runner.r_violations;
  Alcotest.(check bool) "trace non-empty" true (String.length j1 > 0);
  Alcotest.(check bool) "byte-identical JSONL" true (String.equal j1 j2)

(* live scheduler events: the canned demo's faulted run emits a complete
   preemption cycle under the "sched" category, in causal order *)
let test_sched_preemption_cycle_traced () =
  Chaos.Progs.ensure_registered ();
  let c = Trace.collector () in
  ignore
    (Trace.with_sink (Trace.collector_sink c) (fun () -> Chaos.Sched_demo.run ~faults:true ()));
  let evs =
    List.filter
      (Trace.matches { Trace.no_filter with Trace.f_cat = Some "sched" })
      (Trace.events c)
  in
  Alcotest.(check bool) "sched events collected" true (evs <> []);
  let first ?arg name =
    let hit (e : Trace.event) =
      e.Trace.name = name
      && match arg with None -> true | Some kv -> List.mem kv e.Trace.args
    in
    let rec go i = function
      | [] -> Alcotest.fail (Printf.sprintf "no %s event in the demo trace" name)
      | e :: _ when hit e -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 evs
  in
  (* the victim of the first preemption, so the cycle is one job's story *)
  let victim =
    match
      List.find_opt (fun (e : Trace.event) -> e.Trace.name = "sched/preempt") evs
    with
    | Some e -> List.assoc "victim" e.Trace.args
    | None -> Alcotest.fail "no sched/preempt event in the demo trace"
  in
  let j = ("job", victim) in
  Alcotest.(check bool) "submit before preempt" true (first "sched/submit" < first "sched/preempt");
  Alcotest.(check bool) "victim checkpointed before the preempt completes" true
    (first ~arg:j "sched/ckpt-saved" < first "sched/preempt");
  Alcotest.(check bool) "preempt before the victim's restart recovery" true
    (first "sched/preempt" < first ~arg:j "sched/restart-recovery");
  Alcotest.(check bool) "recovery before the victim completes" true
    (first ~arg:j "sched/restart-recovery" < first ~arg:j "sched/job-done")

let () =
  Alcotest.run "trace"
    [
      ( "core",
        [
          Alcotest.test_case "emitters are no-ops when off" `Quick test_emitters_off_are_noops;
          Alcotest.test_case "collector + sink nesting" `Quick test_collector_and_nesting;
          Alcotest.test_case "filtering" `Quick test_filter;
          Alcotest.test_case "ring keeps per-node tail" `Quick test_ring_keeps_tail_per_node;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
          Alcotest.test_case "text golden file" `Quick test_text_golden;
        ] );
      ( "queries",
        [
          Alcotest.test_case "stage stats" `Quick test_query_stage_stats;
          Alcotest.test_case "counter total" `Quick test_query_counter_total;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics_registry ]);
      ( "determinism",
        [ Alcotest.test_case "chaos seed trace stable" `Quick test_chaos_trace_deterministic ] );
      ( "sched",
        [
          Alcotest.test_case "preemption cycle traced" `Quick
            test_sched_preemption_cycle_traced;
        ] );
    ]
