(* Tests for the paged memory model: entropy generators, page codecs,
   regions, address spaces, and copy-on-write fork semantics. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Entropy *)

let test_entropy_deterministic () =
  List.iter
    (fun cls ->
      let a = Mem.Entropy.generate cls ~seed:7L ~len:1000 in
      let b = Mem.Entropy.generate cls ~seed:7L ~len:1000 in
      check Alcotest.bytes (Mem.Entropy.name cls) a b)
    Mem.Entropy.all

let test_entropy_seed_matters () =
  let a = Mem.Entropy.generate Mem.Entropy.Random ~seed:1L ~len:64 in
  let b = Mem.Entropy.generate Mem.Entropy.Random ~seed:2L ~len:64 in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_entropy_ratio_ordering () =
  (* Compressibility must be ordered: zeros < text < random, and random
     must be essentially incompressible. *)
  let z = Mem.Entropy.deflate_ratio Mem.Entropy.Zeros in
  let tx = Mem.Entropy.deflate_ratio Mem.Entropy.Text in
  let r = Mem.Entropy.deflate_ratio Mem.Entropy.Random in
  Alcotest.(check bool) "zeros < text" true (z < tx);
  Alcotest.(check bool) "text < random" true (tx < r);
  Alcotest.(check bool) "zeros tiny" true (z < 0.01);
  Alcotest.(check bool) "random ~1" true (r > 0.9)

let test_entropy_ratio_memoized () =
  let a = Mem.Entropy.deflate_ratio Mem.Entropy.Code in
  let b = Mem.Entropy.deflate_ratio Mem.Entropy.Code in
  check (Alcotest.float 0.) "memoized ratio stable" a b

let test_entropy_codec () =
  List.iter
    (fun cls ->
      let cls' = Util.Codec.roundtrip Mem.Entropy.encode Mem.Entropy.decode cls in
      Alcotest.(check bool) (Mem.Entropy.name cls) true (cls = cls'))
    Mem.Entropy.all

(* ------------------------------------------------------------------ *)
(* Page *)

let test_page_materialize_deterministic () =
  let p = Mem.Page.Synthetic { seed = 99L; cls = Mem.Entropy.Numeric } in
  check Alcotest.bytes "same bytes twice" (Mem.Page.materialize p) (Mem.Page.materialize p)

let test_page_zero () =
  let b = Mem.Page.materialize Mem.Page.Zero in
  check Alcotest.int "page size" Mem.Page.size (Bytes.length b);
  Alcotest.(check bool) "all zero" true (Bytes.for_all (fun c -> c = '\000') b)

let test_page_codec_roundtrip () =
  let pages =
    [
      Mem.Page.Zero;
      Mem.Page.Materialized (Mem.Entropy.generate Mem.Entropy.Text ~seed:1L ~len:Mem.Page.size);
      Mem.Page.Synthetic { seed = 123L; cls = Mem.Entropy.Code };
    ]
  in
  List.iter
    (fun p ->
      let p' = Util.Codec.roundtrip Mem.Page.encode Mem.Page.decode p in
      Alcotest.(check bool) "page round-trip" true (p = p'))
    pages

let test_page_compressed_size_zero_small () =
  let sz = Mem.Page.compressed_size Compress.Algo.Deflate Mem.Page.Zero in
  Alcotest.(check bool) "zero page compresses to ~nothing" true (sz < 64)

(* ------------------------------------------------------------------ *)
(* Address space *)

let make_space () =
  let sp = Mem.Address_space.create () in
  let _text =
    Mem.Address_space.map sp ~kind:Mem.Region.Text ~perms:Mem.Region.rx ~bytes:(8 * Mem.Page.size)
      ~content:(fun i -> Mem.Page.Synthetic { seed = Int64.of_int i; cls = Mem.Entropy.Code })
      ()
  in
  let heap = Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw ~bytes:(16 * Mem.Page.size) () in
  (sp, heap)

let test_space_map_addresses_disjoint () =
  let sp = Mem.Address_space.create () in
  let a = Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw ~bytes:4096 () in
  let b = Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw ~bytes:4096 () in
  Alcotest.(check bool) "disjoint" true
    (Mem.Region.end_addr a <= b.Mem.Region.start_addr || Mem.Region.end_addr b <= a.Mem.Region.start_addr)

let test_space_read_write_roundtrip () =
  let sp, heap = make_space () in
  let addr = heap.Mem.Region.start_addr + 100 in
  Mem.Address_space.write sp ~addr "hello, checkpoint";
  check Alcotest.string "read back" "hello, checkpoint"
    (Mem.Address_space.read sp ~addr ~len:17)

let test_space_write_across_pages () =
  let sp, heap = make_space () in
  let addr = heap.Mem.Region.start_addr + Mem.Page.size - 3 in
  Mem.Address_space.write sp ~addr "abcdefgh";
  check Alcotest.string "crosses page boundary" "abcdefgh" (Mem.Address_space.read sp ~addr ~len:8)

let test_space_unmapped_access_rejected () =
  let sp, _ = make_space () in
  Alcotest.(check bool) "unmapped read raises" true
    (try
       ignore (Mem.Address_space.read sp ~addr:0x10 ~len:1);
       false
     with Invalid_argument _ -> true)

let test_space_cross_region_access_rejected () =
  let sp, heap = make_space () in
  let addr = Mem.Region.end_addr heap - 2 in
  Alcotest.(check bool) "crossing region end raises" true
    (try
       ignore (Mem.Address_space.read sp ~addr ~len:10);
       false
     with Invalid_argument _ -> true)

let test_space_fork_isolation () =
  let sp, heap = make_space () in
  let addr = heap.Mem.Region.start_addr in
  Mem.Address_space.write sp ~addr "original";
  let child = Mem.Address_space.fork sp in
  Mem.Address_space.write sp ~addr "PARENT!!";
  check Alcotest.string "child unaffected by parent write" "original"
    (Mem.Address_space.read child ~addr ~len:8);
  Mem.Address_space.write child ~addr "CHILD!!!";
  check Alcotest.string "parent unaffected by child write" "PARENT!!"
    (Mem.Address_space.read sp ~addr ~len:8)

let test_space_shared_mapping_visible () =
  let sp, _ = make_space () in
  let shared =
    Mem.Address_space.map sp
      ~kind:(Mem.Region.Mmap_shared { backing_path = "/dev/shm/seg0" })
      ~perms:Mem.Region.rw ~bytes:4096 ()
  in
  let child = Mem.Address_space.fork sp in
  let addr = shared.Mem.Region.start_addr in
  Mem.Address_space.write sp ~addr "shared-data";
  check Alcotest.string "visible through fork" "shared-data"
    (Mem.Address_space.read child ~addr ~len:11)

let test_space_attach_aliases () =
  let a = Mem.Address_space.create () in
  let b = Mem.Address_space.create () in
  let seg =
    Mem.Address_space.map a
      ~kind:(Mem.Region.Mmap_shared { backing_path = "/dev/shm/seg1" })
      ~perms:Mem.Region.rw ~bytes:4096 ()
  in
  let seg_b = Mem.Address_space.attach b seg in
  Mem.Address_space.write a ~addr:seg.Mem.Region.start_addr "ping";
  check Alcotest.string "attached space sees writes" "ping"
    (Mem.Address_space.read b ~addr:seg_b.Mem.Region.start_addr ~len:4)

let test_space_zero_accounting () =
  let sp = Mem.Address_space.create () in
  let r = Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw ~bytes:(4 * Mem.Page.size) () in
  check Alcotest.int "all zero initially" (4 * Mem.Page.size) (Mem.Address_space.zero_bytes sp);
  Mem.Address_space.write sp ~addr:r.Mem.Region.start_addr "x";
  check Alcotest.int "one page dirtied" (3 * Mem.Page.size) (Mem.Address_space.zero_bytes sp)

let test_space_codec_roundtrip () =
  let sp, heap = make_space () in
  Mem.Address_space.write sp ~addr:heap.Mem.Region.start_addr "persisted";
  let sp' = Util.Codec.roundtrip Mem.Address_space.encode Mem.Address_space.decode sp in
  Alcotest.(check bool) "spaces equal" true (Mem.Address_space.equal sp sp');
  check Alcotest.string "data survives" "persisted"
    (Mem.Address_space.read sp' ~addr:heap.Mem.Region.start_addr ~len:9)

let test_space_unmap () =
  let sp, heap = make_space () in
  let n = List.length (Mem.Address_space.regions sp) in
  Mem.Address_space.unmap sp heap;
  check Alcotest.int "one fewer region" (n - 1) (List.length (Mem.Address_space.regions sp));
  Alcotest.(check bool) "address no longer mapped" true
    (Mem.Address_space.find_region sp ~addr:heap.Mem.Region.start_addr = None)

let prop_write_read =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"write then read returns written bytes"
       QCheck.(pair (string_of_size QCheck.Gen.(1 -- 300)) (int_bound 5000))
       (fun (s, off) ->
         let sp = Mem.Address_space.create () in
         let r = Mem.Address_space.map sp ~kind:Mem.Region.Heap ~perms:Mem.Region.rw ~bytes:(4 * Mem.Page.size) () in
         let off = off mod ((4 * Mem.Page.size) - String.length s) in
         let addr = r.Mem.Region.start_addr + off in
         Mem.Address_space.write sp ~addr s;
         Mem.Address_space.read sp ~addr ~len:(String.length s) = s))

let prop_fork_preserves_equality =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"fork is observationally equal until a write"
       QCheck.(small_string)
       (fun s ->
         let sp = Mem.Address_space.create () in
         let r = Mem.Address_space.map sp ~kind:Mem.Region.Data ~perms:Mem.Region.rw ~bytes:4096 () in
         if String.length s > 0 then Mem.Address_space.write sp ~addr:r.Mem.Region.start_addr s;
         let child = Mem.Address_space.fork sp in
         Mem.Address_space.equal sp child))

(* ------------------------------------------------------------------ *)
(* per-page dirty tracking (incremental checkpointing) *)

let test_dirty_fresh_and_clear () =
  let sp, heap = make_space () in
  (* freshly mapped pages are all dirty: the first checkpoint after a
     map must write them even if nothing ever stored to them *)
  check Alcotest.int "fresh region fully dirty"
    (Array.length heap.Mem.Region.pages)
    (Mem.Region.dirty_count heap);
  check Alcotest.int "space sums regions" (8 + 16) (Mem.Address_space.dirty_pages sp);
  Mem.Address_space.clear_dirty sp;
  check Alcotest.int "clear empties every region" 0 (Mem.Address_space.dirty_pages sp)

let test_dirty_write_marks_page () =
  let sp, heap = make_space () in
  Mem.Address_space.clear_dirty sp;
  let addr = heap.Mem.Region.start_addr + (3 * Mem.Page.size) + 17 in
  Mem.Address_space.write sp ~addr "x";
  check Alcotest.int "exactly one page dirty" 1 (Mem.Address_space.dirty_pages sp);
  Alcotest.(check bool) "the written page" true (Mem.Region.is_dirty heap 3);
  Alcotest.(check bool) "not its neighbour" false (Mem.Region.is_dirty heap 2);
  (* a write spanning a page boundary dirties both sides *)
  Mem.Address_space.write sp
    ~addr:(heap.Mem.Region.start_addr + (5 * Mem.Page.size) - 2)
    "abcd";
  Alcotest.(check bool) "boundary write dirties both" true
    (Mem.Region.is_dirty heap 4 && Mem.Region.is_dirty heap 5)

let test_dirty_snapshot_independent () =
  (* fork (= checkpoint snapshot) copies the bitmap: clearing the live
     space must not erase the snapshot's record of what was dirty *)
  let sp, heap = make_space () in
  Mem.Address_space.clear_dirty sp;
  Mem.Address_space.write sp ~addr:heap.Mem.Region.start_addr "dirty";
  let snap = Mem.Address_space.fork sp in
  Mem.Address_space.clear_dirty sp;
  check Alcotest.int "live cleared" 0 (Mem.Address_space.dirty_pages sp);
  check Alcotest.int "snapshot keeps its bits" 1 (Mem.Address_space.dirty_pages snap);
  (* and the other way: dirtying the live space leaves the snapshot *)
  Mem.Address_space.write sp ~addr:heap.Mem.Region.start_addr "more"
  |> fun () -> check Alcotest.int "snapshot still one" 1 (Mem.Address_space.dirty_pages snap)

let test_dirty_shared_always_full () =
  (* attached views share the region record, so another process's clear
     could hide writes: shared segments always count fully dirty *)
  let sp, _ = make_space () in
  let seg =
    Mem.Address_space.map sp
      ~kind:(Mem.Region.Mmap_shared { backing_path = "/dev/shm/dirty0" })
      ~perms:Mem.Region.rw ~bytes:(2 * Mem.Page.size) ()
  in
  Mem.Address_space.clear_dirty sp;
  check Alcotest.int "shared still counts every page" 2
    (Mem.Address_space.region_dirty_pages seg)

(* ------------------------------------------------------------------ *)
(* per-page residency (demand-paged lazy restore) *)

let test_resident_fresh_absent_faultin () =
  let sp, heap = make_space () in
  check Alcotest.int "fresh space fully resident" (8 + 16) (Mem.Address_space.resident_pages sp);
  check Alcotest.int "counts every page" (8 + 16) (Mem.Address_space.total_pages sp);
  Mem.Region.mark_all_absent heap;
  check Alcotest.int "absent region drops out" 8 (Mem.Address_space.resident_pages sp);
  Alcotest.(check bool) "page reads absent" false (Mem.Region.is_resident heap 3);
  Mem.Region.set_resident heap 3;
  Alcotest.(check bool) "fault-in marks the page" true (Mem.Region.is_resident heap 3);
  check Alcotest.int "one page back" 9 (Mem.Address_space.resident_pages sp);
  check Alcotest.int "region count agrees" 1 (Mem.Region.resident_count heap);
  (* a store makes its page resident, like the kernel's fault hook *)
  Mem.Address_space.write sp ~addr:(heap.Mem.Region.start_addr + Mem.Page.size) "x";
  Alcotest.(check bool) "written page resident" true (Mem.Region.is_resident heap 1)

let test_resident_excluded_from_codec () =
  (* residency is a restart-time accounting device: it never travels
     through the image codec, never affects equality, and a decoded
     region always comes back fully resident *)
  let sp, heap = make_space () in
  let encoded sp =
    let w = Util.Codec.Writer.create () in
    Mem.Address_space.encode w sp;
    Util.Codec.Writer.contents w
  in
  let full = encoded sp in
  Mem.Region.mark_all_absent heap;
  check Alcotest.string "encode ignores residency" full (encoded sp);
  let sp2 = Mem.Address_space.decode (Util.Codec.Reader.of_string full) in
  Alcotest.(check bool) "equality ignores residency" true (Mem.Address_space.equal sp sp2);
  check Alcotest.int "decoded space fully resident" (8 + 16)
    (Mem.Address_space.resident_pages sp2)

let () =
  Alcotest.run "mem"
    [
      ( "entropy",
        [
          Alcotest.test_case "deterministic" `Quick test_entropy_deterministic;
          Alcotest.test_case "seed matters" `Quick test_entropy_seed_matters;
          Alcotest.test_case "ratio ordering" `Quick test_entropy_ratio_ordering;
          Alcotest.test_case "ratio memoized" `Quick test_entropy_ratio_memoized;
          Alcotest.test_case "codec" `Quick test_entropy_codec;
        ] );
      ( "page",
        [
          Alcotest.test_case "materialize deterministic" `Quick test_page_materialize_deterministic;
          Alcotest.test_case "zero page" `Quick test_page_zero;
          Alcotest.test_case "codec round-trip" `Quick test_page_codec_roundtrip;
          Alcotest.test_case "zero compressed size" `Quick test_page_compressed_size_zero_small;
        ] );
      ( "address-space",
        [
          Alcotest.test_case "disjoint mappings" `Quick test_space_map_addresses_disjoint;
          Alcotest.test_case "read/write round-trip" `Quick test_space_read_write_roundtrip;
          Alcotest.test_case "write across pages" `Quick test_space_write_across_pages;
          Alcotest.test_case "unmapped access rejected" `Quick test_space_unmapped_access_rejected;
          Alcotest.test_case "cross-region access rejected" `Quick test_space_cross_region_access_rejected;
          Alcotest.test_case "fork isolation (COW)" `Quick test_space_fork_isolation;
          Alcotest.test_case "shared mapping visible" `Quick test_space_shared_mapping_visible;
          Alcotest.test_case "attach aliases" `Quick test_space_attach_aliases;
          Alcotest.test_case "zero accounting" `Quick test_space_zero_accounting;
          Alcotest.test_case "codec round-trip" `Quick test_space_codec_roundtrip;
          Alcotest.test_case "unmap" `Quick test_space_unmap;
          prop_write_read;
          prop_fork_preserves_equality;
        ] );
      ( "dirty-tracking",
        [
          Alcotest.test_case "fresh pages dirty, clear resets" `Quick test_dirty_fresh_and_clear;
          Alcotest.test_case "writes mark pages" `Quick test_dirty_write_marks_page;
          Alcotest.test_case "snapshot bitmap independent" `Quick test_dirty_snapshot_independent;
          Alcotest.test_case "shared segments stay dirty" `Quick test_dirty_shared_always_full;
        ] );
      ( "resident",
        [
          Alcotest.test_case "fresh, absent, fault-in accounting" `Quick
            test_resident_fresh_absent_faultin;
          Alcotest.test_case "excluded from codec and equality" `Quick
            test_resident_excluded_from_codec;
        ] );
    ]
