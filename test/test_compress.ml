(* Tests for the compression stack: bit I/O, Huffman, LZ77, RLE, deflate,
   container framing, and the throughput model. *)

let check = Alcotest.check

(* Sample corpora with different redundancy characteristics. *)
let text_sample =
  String.concat " "
    (List.init 200 (fun i ->
         Printf.sprintf "the quick brown fox %d jumps over the lazy dog" (i mod 7)))

let random_sample n =
  let rng = Util.Rng.create 0xC0FFEEL in
  Bytes.unsafe_to_string (Util.Rng.bytes rng n)

let zero_sample n = String.make n '\000'

(* ------------------------------------------------------------------ *)
(* Bitio *)

let test_bitio_roundtrip () =
  let w = Compress.Bitio.Writer.create () in
  let fields = [ (0b1, 1); (0b1010, 4); (0xff, 8); (0b110, 3); (0x1234, 16); (0, 2) ] in
  List.iter (fun (bits, count) -> Compress.Bitio.Writer.put w ~bits ~count) fields;
  let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
  List.iter
    (fun (bits, count) -> check Alcotest.int (Printf.sprintf "%d bits" count) bits (Compress.Bitio.Reader.get r count))
    fields

let test_bitio_truncated () =
  let r = Compress.Bitio.Reader.of_string "" in
  Alcotest.check_raises "truncated" Compress.Bitio.Reader.Truncated (fun () ->
      ignore (Compress.Bitio.Reader.get r 1))

let test_bitio_bit_length () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.put w ~bits:0 ~count:13;
  check Alcotest.int "bit length" 13 (Compress.Bitio.Writer.bit_length w)

let prop_bitio_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"bitio round-trips arbitrary fields"
       QCheck.(small_list (pair (int_bound 0xffffff) (int_range 1 24)))
       (fun fields ->
         let fields = List.map (fun (bits, count) -> (bits land ((1 lsl count) - 1), count)) fields in
         let w = Compress.Bitio.Writer.create () in
         List.iter (fun (bits, count) -> Compress.Bitio.Writer.put w ~bits ~count) fields;
         let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
         List.for_all (fun (bits, count) -> Compress.Bitio.Reader.get r count = bits) fields))

(* ------------------------------------------------------------------ *)
(* Huffman *)

let huffman_roundtrip syms nsyms =
  let freq = Array.make nsyms 0 in
  List.iter (fun s -> freq.(s) <- freq.(s) + 1) syms;
  let lens = Compress.Huffman.lengths_of_freqs freq in
  let enc = Compress.Huffman.encoder_of_lengths lens in
  let dec = Compress.Huffman.decoder_of_lengths lens in
  let w = Compress.Bitio.Writer.create () in
  List.iter (fun s -> Compress.Huffman.encode enc w s) syms;
  let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
  List.map (fun _ -> Compress.Huffman.decode dec r) syms = syms

let test_huffman_simple () =
  Alcotest.(check bool) "round-trip" true (huffman_roundtrip [ 0; 1; 2; 0; 0; 1; 3; 0 ] 4)

let test_huffman_single_symbol () =
  Alcotest.(check bool) "single-symbol alphabet" true (huffman_roundtrip [ 5; 5; 5; 5 ] 8)

let test_huffman_skewed () =
  (* Extremely skewed frequencies exercise the depth-limit damping. *)
  let syms = List.concat (List.init 30 (fun i -> List.init (1 lsl min i 18) (fun _ -> i))) in
  (* This is big; sample it down but keep skew. *)
  let syms = List.filteri (fun i _ -> i mod 97 = 0) syms in
  Alcotest.(check bool) "skewed frequencies" true (huffman_roundtrip syms 30)

let test_huffman_optimality_order () =
  (* More frequent symbols must not get longer codes. *)
  let freq = [| 100; 50; 20; 5; 1 |] in
  let lens = Compress.Huffman.lengths_of_freqs freq in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "len(%d) <= len(%d)" i (i + 1))
      true
      (lens.(i) <= lens.(i + 1))
  done

let test_huffman_no_symbols_rejected () =
  Alcotest.check_raises "empty alphabet" (Invalid_argument "Huffman.lengths_of_freqs: no symbols")
    (fun () -> ignore (Compress.Huffman.lengths_of_freqs [| 0; 0 |]))

let prop_huffman_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"huffman round-trips arbitrary symbol lists"
       QCheck.(list_of_size Gen.(1 -- 300) (int_bound 40))
       (fun syms -> huffman_roundtrip syms 41))

(* ------------------------------------------------------------------ *)
(* LZ77 *)

let lz77_roundtrip s = Compress.Lz77.reconstruct (Compress.Lz77.tokenize s) = s

let test_lz77_empty () = Alcotest.(check bool) "empty" true (lz77_roundtrip "")
let test_lz77_text () = Alcotest.(check bool) "text" true (lz77_roundtrip text_sample)
let test_lz77_random () = Alcotest.(check bool) "random" true (lz77_roundtrip (random_sample 10_000))
let test_lz77_zeros () = Alcotest.(check bool) "zeros" true (lz77_roundtrip (zero_sample 100_000))

let count_matches tokens =
  Compress.Lz77.fold tokens ~init:0 ~lit:(fun acc _ -> acc) ~mtch:(fun acc ~dist:_ ~len:_ -> acc + 1)

let test_lz77_finds_matches () =
  let tokens = Compress.Lz77.tokenize (String.concat "" (List.init 50 (fun _ -> "abcdefgh"))) in
  Alcotest.(check bool) "repetitive input yields matches" true (count_matches tokens > 0)

let test_lz77_token_bounds () =
  (* every emitted token decodes to an in-range literal or match *)
  let t = Compress.Lz77.tokenize (text_sample ^ random_sample 5_000) in
  let ok = ref true in
  Compress.Lz77.fold t ~init:()
    ~lit:(fun () c -> if Char.code c < 0 || Char.code c > 255 then ok := false)
    ~mtch:(fun () ~dist ~len ->
      if
        dist < 1 || dist > Compress.Lz77.window_size || len < Compress.Lz77.min_match
        || len > Compress.Lz77.max_match
      then ok := false);
  Alcotest.(check bool) "tokens within bounds" true !ok

(* Sizes that straddle the LZ77 window (32768): off-by-one bugs in
   match-distance or hash-chain pruning live exactly here. *)
let window = 32768

let adversarial_sizes =
  [ 0; 1; 2; window - 1; window; window + 1; (2 * window) - 1; 2 * window ]

(* One deterministic corpus per (size, flavour): pinned seeds so a
   failure names its input exactly. *)
let adversarial_samples =
  List.concat_map
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int (0xBAD5EED + n)) in
      let random = Bytes.unsafe_to_string (Util.Rng.bytes rng n) in
      let repetitive = String.init n (fun i -> "abcabc!".[i mod 7]) in
      let zeros = String.make n '\000' in
      [
        (Printf.sprintf "random/%d" n, random);
        (Printf.sprintf "repetitive/%d" n, repetitive);
        (Printf.sprintf "zeros/%d" n, zeros);
      ])
    adversarial_sizes

let test_lz77_adversarial_sizes () =
  List.iter
    (fun (name, s) -> Alcotest.(check bool) name true (lz77_roundtrip s))
    adversarial_samples

let prop_lz77_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"lz77 round-trips arbitrary strings" QCheck.string lz77_roundtrip)

(* ------------------------------------------------------------------ *)
(* RLE *)

let rle_roundtrip s = Compress.Rle.decompress (Compress.Rle.compress s) = s

let test_rle_empty () = Alcotest.(check bool) "empty" true (rle_roundtrip "")
let test_rle_runs () = Alcotest.(check bool) "runs" true (rle_roundtrip "aaaabbbbccccddddddddddd")
let test_rle_no_runs () = Alcotest.(check bool) "no runs" true (rle_roundtrip "abcdefgh")
let test_rle_zeros_shrink () =
  let s = zero_sample 10_000 in
  Alcotest.(check bool) "zeros shrink a lot" true
    (String.length (Compress.Rle.compress s) < String.length s / 10)

let prop_rle_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"rle round-trips arbitrary strings" QCheck.string rle_roundtrip)

(* ------------------------------------------------------------------ *)
(* Deflate *)

let deflate_roundtrip s = Compress.Deflate.decompress (Compress.Deflate.compress s) = s

let test_deflate_empty () = Alcotest.(check bool) "empty" true (deflate_roundtrip "")
let test_deflate_text () = Alcotest.(check bool) "text" true (deflate_roundtrip text_sample)
let test_deflate_random () = Alcotest.(check bool) "random" true (deflate_roundtrip (random_sample 20_000))
let test_deflate_zeros () = Alcotest.(check bool) "zeros" true (deflate_roundtrip (zero_sample 50_000))

let test_deflate_compresses_text () =
  let packed = Compress.Deflate.compress text_sample in
  Alcotest.(check bool) "text shrinks 3x+" true (String.length packed * 3 < String.length text_sample)

let test_deflate_zeros_tiny () =
  let packed = Compress.Deflate.compress (zero_sample 100_000) in
  Alcotest.(check bool) "zeros shrink 100x+" true (String.length packed * 100 < 100_000)

let test_deflate_random_no_blowup () =
  let s = random_sample 10_000 in
  let packed = Compress.Deflate.compress s in
  Alcotest.(check bool) "random data grows < 15%" true
    (String.length packed < String.length s * 115 / 100)

let test_deflate_adversarial_sizes () =
  List.iter
    (fun (name, s) -> Alcotest.(check bool) name true (deflate_roundtrip s))
    adversarial_samples

let prop_deflate_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"deflate round-trips arbitrary strings" QCheck.string deflate_roundtrip)

let prop_deflate_roundtrip_runs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"deflate round-trips run-heavy strings"
       QCheck.(list (pair (map (fun n -> Char.chr (Char.code 'a' + n)) (int_bound 4)) (int_range 1 300)))
       (fun spec ->
         let s = String.concat "" (List.map (fun (c, n) -> String.make n c) spec) in
         deflate_roundtrip s))

(* ------------------------------------------------------------------ *)
(* Container (DMZ2 block format + legacy DMZ1) *)

let test_container_roundtrip_all_algos () =
  List.iter
    (fun algo ->
      let packed = Compress.Container.pack ~algo text_sample in
      check Alcotest.string (Compress.Algo.name algo) text_sample (Compress.Container.unpack packed);
      Alcotest.(check bool) "algo recorded" true (Compress.Container.algo_of packed = algo))
    Compress.Algo.all

let test_container_detects_corruption () =
  let packed = Compress.Container.pack ~algo:Compress.Algo.Deflate text_sample in
  (* Flip a byte in the body (past the header). *)
  let b = Bytes.of_string packed in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let corrupted = Bytes.to_string b in
  Alcotest.(check bool) "corruption detected" true
    (try
       ignore (Compress.Container.unpack corrupted);
       false
     with Compress.Container.Bad_container _ -> true)

let test_container_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Compress.Container.unpack "not a container at all");
       false
     with Compress.Container.Bad_container _ -> true)

(* Block-boundary sizes with a small test block size: off-by-one bugs in
   block splitting/reassembly live exactly at 0, 1, b-1, b, b+1 and a
   multi-block size with a ragged tail. *)
let block = 4096

let boundary_sizes = [ 0; 1; block - 1; block; block + 1; (3 * block) + 17 ]

let test_container_block_boundaries () =
  List.iter
    (fun algo ->
      List.iter
        (fun n ->
          let flavours =
            [
              ("random", random_sample n);
              ("repetitive", String.init n (fun i -> "abcabc!".[i mod 7]));
              ("zeros", zero_sample n);
            ]
          in
          List.iter
            (fun (flavour, s) ->
              let packed = Compress.Container.pack ~block_size:block ~algo s in
              check Alcotest.string
                (Printf.sprintf "%s/%s/%d" (Compress.Algo.name algo) flavour n)
                s (Compress.Container.unpack packed))
            flavours)
        boundary_sizes)
    Compress.Algo.all

let prop_container_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"container round-trips arbitrary strings at small block size"
       QCheck.(pair string (int_range 1 500))
       (fun (s, bs) ->
         Compress.Container.unpack (Compress.Container.pack ~block_size:bs ~algo:Compress.Algo.Deflate s) = s))

let test_container_stored_fallback () =
  (* incompressible input must not expand beyond the framing overhead:
     the deflate algo falls back to stored blocks *)
  List.iter
    (fun n ->
      let s = random_sample n in
      let packed = Compress.Container.pack ~algo:Compress.Algo.Deflate s in
      Alcotest.(check bool)
        (Printf.sprintf "random %d expands <= 1%%" n)
        true
        (String.length packed <= n + 64 + (n / 100)))
    [ 1_000; 65_536; 1_000_000 ]

let test_container_reports_block_index () =
  (* corrupt one block of a multi-block image: the error must name a
     block, and blocks other than the first must be nameable *)
  let s = String.concat "" (List.init 40 (fun i -> Printf.sprintf "block payload %d %s" i text_sample)) in
  let packed = Compress.Container.pack ~block_size:block ~algo:Compress.Algo.Deflate s in
  let flip pos =
    let b = Bytes.of_string packed in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    Bytes.to_string b
  in
  let block_of_error pos =
    try
      ignore (Compress.Container.unpack (flip pos));
      None
    with Compress.Container.Bad_container msg -> (
      try Scanf.sscanf msg "block %d/%d" (fun b _ -> Some b) with Scanf.Scan_failure _ | End_of_file -> None)
  in
  (* a flip near the end lands in a late block; near the start of the
     payload area, in an early one *)
  match (block_of_error (String.length packed - 4), block_of_error 40) with
  | Some late, Some early ->
    Alcotest.(check bool) "late flip names a late block" true (late > early);
    Alcotest.(check bool) "early flip names an early block" true (early >= 0)
  | other ->
    Alcotest.failf "expected block-indexed errors, got %s"
      (match other with
      | None, None -> "neither"
      | None, _ -> "no late index"
      | _, None -> "no early index"
      | _ -> "?")

let prop_container_flip_detected =
  let packed = Compress.Container.pack ~block_size:256 ~algo:Compress.Algo.Deflate text_sample in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"container: any single-byte flip is detected or harmless"
       QCheck.(pair (int_bound 1_000_000) (int_bound 255))
       (fun (posseed, delta) ->
         let pos = posseed mod String.length packed in
         let b = Bytes.of_string packed in
         Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor max 1 delta));
         (* either the flip is rejected, or (e.g. the recorded algo tag,
            which block decoding does not rely on) the data still decodes
            exactly *)
         match Compress.Container.unpack (Bytes.to_string b) with
         | s -> s = text_sample
         | exception Compress.Container.Bad_container _ -> true))

(* legacy DMZ1 images (whole-body compression, single CRC) must keep
   decoding: both a fresh pack_v1 and a byte-for-byte golden image *)
let test_container_v1_roundtrip () =
  List.iter
    (fun algo ->
      let packed = Compress.Container.pack_v1 ~algo text_sample in
      check Alcotest.string
        ("v1 " ^ Compress.Algo.name algo)
        text_sample (Compress.Container.unpack packed);
      Alcotest.(check bool) "v1 algo recorded" true (Compress.Container.algo_of packed = algo))
    Compress.Algo.all

let golden_v1_hex =
  String.concat ""
    [
      "444d5a31021cf063f582ffffffffb2011c9e02000000000000000000000000000000000300000000";
      "00050000000000000000000000000000000000000000000000000040404555455045350505040000";
      "00000000000000000000000000000000000000000000000000000000000000000000000000000000";
      "00000000000000000000000000000000000000000000000000000004000000000000000000000000";
      "00001e0000000000000000000000000000000fba4cf7a3df84874c6be0e918fc2159";
    ]
let golden_v1_plain = "checkpoint image, old format"

let of_hex h =
  String.init (String.length h / 2) (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let test_container_v1_golden () =
  check Alcotest.string "golden DMZ1 image decodes" golden_v1_plain
    (Compress.Container.unpack (of_hex golden_v1_hex))

(* ------------------------------------------------------------------ *)
(* corrupt-header hardening: implausible declared lengths must be
   rejected before any allocation is sized from them *)

let expect_bad_container name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Compress.Container.Bad_container _ -> true)

let test_container_huge_orig_len_rejected () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.raw w "DMZ2";
  Util.Codec.Writer.u8 w 2 (* deflate *);
  Util.Codec.Writer.uvarint w 262144 (* block size *);
  Util.Codec.Writer.uvarint w (1 lsl 40) (* ~1 TB declared length *);
  Util.Codec.Writer.uvarint w 1;
  expect_bad_container "huge v2 orig_len rejected" (fun () ->
      Compress.Container.unpack (Util.Codec.Writer.contents w))

let test_container_huge_block_size_rejected () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.raw w "DMZ2";
  Util.Codec.Writer.u8 w 2;
  Util.Codec.Writer.uvarint w (1 lsl 40);
  Util.Codec.Writer.uvarint w 100;
  Util.Codec.Writer.uvarint w 1;
  expect_bad_container "huge v2 block size rejected" (fun () ->
      Compress.Container.unpack (Util.Codec.Writer.contents w))

let test_container_v1_huge_orig_len_rejected () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.raw w "DMZ1";
  Util.Codec.Writer.u8 w 2;
  Util.Codec.Writer.uvarint w (1 lsl 40);
  Util.Codec.Writer.i64 w 0L;
  Util.Codec.Writer.string w "tiny";
  expect_bad_container "huge v1 orig_len rejected" (fun () ->
      Compress.Container.unpack (Util.Codec.Writer.contents w))

let test_deflate_huge_orig_len_rejected () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.uvarint w (1 lsl 40);
  Util.Codec.Writer.uvarint w 0;
  Util.Codec.Writer.uvarint w 0;
  Util.Codec.Writer.string w "";
  Alcotest.(check bool) "huge deflate orig_len rejected" true
    (try
       ignore (Compress.Deflate.decompress (Util.Codec.Writer.contents w));
       false
     with Invalid_argument _ -> true)

let prop_container_header_fuzz =
  (* random mutations of the first 16 header bytes never crash, never
     demand absurd allocations: every outcome is Bad_container or a
     successful decode *)
  let packed = Compress.Container.pack ~block_size:512 ~algo:Compress.Algo.Deflate text_sample in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"container header fuzz: mutate first bytes"
       QCheck.(pair (int_bound 15) (int_range 1 255))
       (fun (pos, delta) ->
         let pos = min pos (String.length packed - 1) in
         let b = Bytes.of_string packed in
         Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
         match Compress.Container.unpack (Bytes.to_string b) with
         | _ -> true
         | exception Compress.Container.Bad_container _ -> true))

(* ------------------------------------------------------------------ *)
(* compression metrics surfaced through the trace registry *)

let test_container_metrics () =
  Trace.Metrics.reset ();
  ignore (Compress.Container.pack ~algo:Compress.Algo.Deflate (text_sample ^ random_sample 4096));
  let snap = Trace.Metrics.snapshot_text () in
  let mentions needle =
    let n = String.length needle and hlen = String.length snap in
    let rec go i = i + n <= hlen && (String.sub snap i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "metrics mention %S" needle) true (mentions needle))
    [ "compress.deflate.bytes_in"; "compress.deflate.bytes_out"; "compress.blocks." ]

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_compressed_slower_than_disk () =
  (* Core Figure 4a effect: deflate at ~21 MB/s is slower than a 100 MB/s
     disk, so compressed checkpoints take longer. *)
  let t = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:100_000_000 ~zero_bytes:0 in
  Alcotest.(check bool) "100 MB takes > 1 s to gzip" true (t > 1.0)

let test_model_zeros_faster () =
  let plain = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  let zeros = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:1_000_000 in
  Alcotest.(check bool) "zero pages much faster" true (zeros *. 5. < plain)

let test_model_decompress_faster () =
  let c = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  let d = Compress.Model.decompress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  Alcotest.(check bool) "gunzip faster than gzip" true (d < c)

let () =
  Alcotest.run "compress"
    [
      ( "bitio",
        [
          Alcotest.test_case "round-trip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "truncated" `Quick test_bitio_truncated;
          Alcotest.test_case "bit length" `Quick test_bitio_bit_length;
          prop_bitio_roundtrip;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "simple" `Quick test_huffman_simple;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "skewed" `Quick test_huffman_skewed;
          Alcotest.test_case "frequency/length order" `Quick test_huffman_optimality_order;
          Alcotest.test_case "empty alphabet rejected" `Quick test_huffman_no_symbols_rejected;
          prop_huffman_roundtrip;
        ] );
      ( "lz77",
        [
          Alcotest.test_case "empty" `Quick test_lz77_empty;
          Alcotest.test_case "text" `Quick test_lz77_text;
          Alcotest.test_case "random" `Quick test_lz77_random;
          Alcotest.test_case "zeros" `Quick test_lz77_zeros;
          Alcotest.test_case "finds matches" `Quick test_lz77_finds_matches;
          Alcotest.test_case "token bounds" `Quick test_lz77_token_bounds;
          Alcotest.test_case "adversarial sizes" `Quick test_lz77_adversarial_sizes;
          prop_lz77_roundtrip;
        ] );
      ( "rle",
        [
          Alcotest.test_case "empty" `Quick test_rle_empty;
          Alcotest.test_case "runs" `Quick test_rle_runs;
          Alcotest.test_case "no runs" `Quick test_rle_no_runs;
          Alcotest.test_case "zeros shrink" `Quick test_rle_zeros_shrink;
          prop_rle_roundtrip;
        ] );
      ( "deflate",
        [
          Alcotest.test_case "empty" `Quick test_deflate_empty;
          Alcotest.test_case "text" `Quick test_deflate_text;
          Alcotest.test_case "random" `Quick test_deflate_random;
          Alcotest.test_case "zeros" `Quick test_deflate_zeros;
          Alcotest.test_case "compresses text" `Quick test_deflate_compresses_text;
          Alcotest.test_case "zeros compress hard" `Quick test_deflate_zeros_tiny;
          Alcotest.test_case "random no blowup" `Quick test_deflate_random_no_blowup;
          Alcotest.test_case "adversarial sizes" `Quick test_deflate_adversarial_sizes;
          prop_deflate_roundtrip;
          prop_deflate_roundtrip_runs;
        ] );
      ( "container",
        [
          Alcotest.test_case "round-trip all algos" `Quick test_container_roundtrip_all_algos;
          Alcotest.test_case "detects corruption" `Quick test_container_detects_corruption;
          Alcotest.test_case "bad magic" `Quick test_container_bad_magic;
          Alcotest.test_case "block boundaries" `Quick test_container_block_boundaries;
          Alcotest.test_case "stored fallback bounds expansion" `Quick test_container_stored_fallback;
          Alcotest.test_case "corruption names block index" `Quick test_container_reports_block_index;
          Alcotest.test_case "v1 round-trip" `Quick test_container_v1_roundtrip;
          Alcotest.test_case "v1 golden image" `Quick test_container_v1_golden;
          prop_container_roundtrip;
          prop_container_flip_detected;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "huge v2 orig_len" `Quick test_container_huge_orig_len_rejected;
          Alcotest.test_case "huge v2 block size" `Quick test_container_huge_block_size_rejected;
          Alcotest.test_case "huge v1 orig_len" `Quick test_container_v1_huge_orig_len_rejected;
          Alcotest.test_case "huge deflate orig_len" `Quick test_deflate_huge_orig_len_rejected;
          prop_container_header_fuzz;
        ] );
      ( "metrics",
        [ Alcotest.test_case "pack feeds the trace registry" `Quick test_container_metrics ] );
      ( "model",
        [
          Alcotest.test_case "compression slower than disk" `Quick test_model_compressed_slower_than_disk;
          Alcotest.test_case "zeros faster" `Quick test_model_zeros_faster;
          Alcotest.test_case "decompress faster" `Quick test_model_decompress_faster;
        ] );
    ]
