(* Tests for the compression stack: bit I/O, Huffman, LZ77, RLE, deflate,
   container framing, and the throughput model. *)

let check = Alcotest.check

(* Sample corpora with different redundancy characteristics. *)
let text_sample =
  String.concat " "
    (List.init 200 (fun i ->
         Printf.sprintf "the quick brown fox %d jumps over the lazy dog" (i mod 7)))

let random_sample n =
  let rng = Util.Rng.create 0xC0FFEEL in
  Bytes.unsafe_to_string (Util.Rng.bytes rng n)

let zero_sample n = String.make n '\000'

(* ------------------------------------------------------------------ *)
(* Bitio *)

let test_bitio_roundtrip () =
  let w = Compress.Bitio.Writer.create () in
  let fields = [ (0b1, 1); (0b1010, 4); (0xff, 8); (0b110, 3); (0x1234, 16); (0, 2) ] in
  List.iter (fun (bits, count) -> Compress.Bitio.Writer.put w ~bits ~count) fields;
  let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
  List.iter
    (fun (bits, count) -> check Alcotest.int (Printf.sprintf "%d bits" count) bits (Compress.Bitio.Reader.get r count))
    fields

let test_bitio_truncated () =
  let r = Compress.Bitio.Reader.of_string "" in
  Alcotest.check_raises "truncated" Compress.Bitio.Reader.Truncated (fun () ->
      ignore (Compress.Bitio.Reader.get r 1))

let test_bitio_bit_length () =
  let w = Compress.Bitio.Writer.create () in
  Compress.Bitio.Writer.put w ~bits:0 ~count:13;
  check Alcotest.int "bit length" 13 (Compress.Bitio.Writer.bit_length w)

let prop_bitio_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"bitio round-trips arbitrary fields"
       QCheck.(small_list (pair (int_bound 0xffffff) (int_range 1 24)))
       (fun fields ->
         let fields = List.map (fun (bits, count) -> (bits land ((1 lsl count) - 1), count)) fields in
         let w = Compress.Bitio.Writer.create () in
         List.iter (fun (bits, count) -> Compress.Bitio.Writer.put w ~bits ~count) fields;
         let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
         List.for_all (fun (bits, count) -> Compress.Bitio.Reader.get r count = bits) fields))

(* ------------------------------------------------------------------ *)
(* Huffman *)

let huffman_roundtrip syms nsyms =
  let freq = Array.make nsyms 0 in
  List.iter (fun s -> freq.(s) <- freq.(s) + 1) syms;
  let lens = Compress.Huffman.lengths_of_freqs freq in
  let enc = Compress.Huffman.encoder_of_lengths lens in
  let dec = Compress.Huffman.decoder_of_lengths lens in
  let w = Compress.Bitio.Writer.create () in
  List.iter (fun s -> Compress.Huffman.encode enc w s) syms;
  let r = Compress.Bitio.Reader.of_string (Compress.Bitio.Writer.contents w) in
  List.map (fun _ -> Compress.Huffman.decode dec r) syms = syms

let test_huffman_simple () =
  Alcotest.(check bool) "round-trip" true (huffman_roundtrip [ 0; 1; 2; 0; 0; 1; 3; 0 ] 4)

let test_huffman_single_symbol () =
  Alcotest.(check bool) "single-symbol alphabet" true (huffman_roundtrip [ 5; 5; 5; 5 ] 8)

let test_huffman_skewed () =
  (* Extremely skewed frequencies exercise the depth-limit damping. *)
  let syms = List.concat (List.init 30 (fun i -> List.init (1 lsl min i 18) (fun _ -> i))) in
  (* This is big; sample it down but keep skew. *)
  let syms = List.filteri (fun i _ -> i mod 97 = 0) syms in
  Alcotest.(check bool) "skewed frequencies" true (huffman_roundtrip syms 30)

let test_huffman_optimality_order () =
  (* More frequent symbols must not get longer codes. *)
  let freq = [| 100; 50; 20; 5; 1 |] in
  let lens = Compress.Huffman.lengths_of_freqs freq in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "len(%d) <= len(%d)" i (i + 1))
      true
      (lens.(i) <= lens.(i + 1))
  done

let test_huffman_no_symbols_rejected () =
  Alcotest.check_raises "empty alphabet" (Invalid_argument "Huffman.lengths_of_freqs: no symbols")
    (fun () -> ignore (Compress.Huffman.lengths_of_freqs [| 0; 0 |]))

let prop_huffman_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"huffman round-trips arbitrary symbol lists"
       QCheck.(list_of_size Gen.(1 -- 300) (int_bound 40))
       (fun syms -> huffman_roundtrip syms 41))

(* ------------------------------------------------------------------ *)
(* LZ77 *)

let lz77_roundtrip s = Compress.Lz77.reconstruct (Compress.Lz77.tokenize s) = s

let test_lz77_empty () = Alcotest.(check bool) "empty" true (lz77_roundtrip "")
let test_lz77_text () = Alcotest.(check bool) "text" true (lz77_roundtrip text_sample)
let test_lz77_random () = Alcotest.(check bool) "random" true (lz77_roundtrip (random_sample 10_000))
let test_lz77_zeros () = Alcotest.(check bool) "zeros" true (lz77_roundtrip (zero_sample 100_000))

let test_lz77_finds_matches () =
  let tokens = Compress.Lz77.tokenize (String.concat "" (List.init 50 (fun _ -> "abcdefgh"))) in
  let matches = Array.to_list tokens |> List.filter (function Compress.Lz77.Match _ -> true | _ -> false) in
  Alcotest.(check bool) "repetitive input yields matches" true (List.length matches > 0)

(* Sizes that straddle the LZ77 window (32768): off-by-one bugs in
   match-distance or hash-chain pruning live exactly here. *)
let window = 32768

let adversarial_sizes =
  [ 0; 1; 2; window - 1; window; window + 1; (2 * window) - 1; 2 * window ]

(* One deterministic corpus per (size, flavour): pinned seeds so a
   failure names its input exactly. *)
let adversarial_samples =
  List.concat_map
    (fun n ->
      let rng = Util.Rng.create (Int64.of_int (0xBAD5EED + n)) in
      let random = Bytes.unsafe_to_string (Util.Rng.bytes rng n) in
      let repetitive = String.init n (fun i -> "abcabc!".[i mod 7]) in
      let zeros = String.make n '\000' in
      [
        (Printf.sprintf "random/%d" n, random);
        (Printf.sprintf "repetitive/%d" n, repetitive);
        (Printf.sprintf "zeros/%d" n, zeros);
      ])
    adversarial_sizes

let test_lz77_adversarial_sizes () =
  List.iter
    (fun (name, s) -> Alcotest.(check bool) name true (lz77_roundtrip s))
    adversarial_samples

let prop_lz77_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"lz77 round-trips arbitrary strings" QCheck.string lz77_roundtrip)

(* ------------------------------------------------------------------ *)
(* RLE *)

let rle_roundtrip s = Compress.Rle.decompress (Compress.Rle.compress s) = s

let test_rle_empty () = Alcotest.(check bool) "empty" true (rle_roundtrip "")
let test_rle_runs () = Alcotest.(check bool) "runs" true (rle_roundtrip "aaaabbbbccccddddddddddd")
let test_rle_no_runs () = Alcotest.(check bool) "no runs" true (rle_roundtrip "abcdefgh")
let test_rle_zeros_shrink () =
  let s = zero_sample 10_000 in
  Alcotest.(check bool) "zeros shrink a lot" true
    (String.length (Compress.Rle.compress s) < String.length s / 10)

let prop_rle_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"rle round-trips arbitrary strings" QCheck.string rle_roundtrip)

(* ------------------------------------------------------------------ *)
(* Deflate *)

let deflate_roundtrip s = Compress.Deflate.decompress (Compress.Deflate.compress s) = s

let test_deflate_empty () = Alcotest.(check bool) "empty" true (deflate_roundtrip "")
let test_deflate_text () = Alcotest.(check bool) "text" true (deflate_roundtrip text_sample)
let test_deflate_random () = Alcotest.(check bool) "random" true (deflate_roundtrip (random_sample 20_000))
let test_deflate_zeros () = Alcotest.(check bool) "zeros" true (deflate_roundtrip (zero_sample 50_000))

let test_deflate_compresses_text () =
  let packed = Compress.Deflate.compress text_sample in
  Alcotest.(check bool) "text shrinks 3x+" true (String.length packed * 3 < String.length text_sample)

let test_deflate_zeros_tiny () =
  let packed = Compress.Deflate.compress (zero_sample 100_000) in
  Alcotest.(check bool) "zeros shrink 100x+" true (String.length packed * 100 < 100_000)

let test_deflate_random_no_blowup () =
  let s = random_sample 10_000 in
  let packed = Compress.Deflate.compress s in
  Alcotest.(check bool) "random data grows < 15%" true
    (String.length packed < String.length s * 115 / 100)

let test_deflate_adversarial_sizes () =
  List.iter
    (fun (name, s) -> Alcotest.(check bool) name true (deflate_roundtrip s))
    adversarial_samples

let prop_deflate_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"deflate round-trips arbitrary strings" QCheck.string deflate_roundtrip)

let prop_deflate_roundtrip_runs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"deflate round-trips run-heavy strings"
       QCheck.(list (pair (map (fun n -> Char.chr (Char.code 'a' + n)) (int_bound 4)) (int_range 1 300)))
       (fun spec ->
         let s = String.concat "" (List.map (fun (c, n) -> String.make n c) spec) in
         deflate_roundtrip s))

(* ------------------------------------------------------------------ *)
(* Container *)

let test_container_roundtrip_all_algos () =
  List.iter
    (fun algo ->
      let packed = Compress.Container.pack ~algo text_sample in
      check Alcotest.string (Compress.Algo.name algo) text_sample (Compress.Container.unpack packed);
      Alcotest.(check bool) "algo recorded" true (Compress.Container.algo_of packed = algo))
    Compress.Algo.all

let test_container_detects_corruption () =
  let packed = Compress.Container.pack ~algo:Compress.Algo.Deflate text_sample in
  (* Flip a byte in the body (past the header). *)
  let b = Bytes.of_string packed in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let corrupted = Bytes.to_string b in
  Alcotest.(check bool) "corruption detected" true
    (try
       ignore (Compress.Container.unpack corrupted);
       false
     with Compress.Container.Bad_container _ -> true)

let test_container_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Compress.Container.unpack "not a container at all");
       false
     with Compress.Container.Bad_container _ -> true)

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_compressed_slower_than_disk () =
  (* Core Figure 4a effect: deflate at ~21 MB/s is slower than a 100 MB/s
     disk, so compressed checkpoints take longer. *)
  let t = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:100_000_000 ~zero_bytes:0 in
  Alcotest.(check bool) "100 MB takes > 1 s to gzip" true (t > 1.0)

let test_model_zeros_faster () =
  let plain = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  let zeros = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:1_000_000 in
  Alcotest.(check bool) "zero pages much faster" true (zeros *. 5. < plain)

let test_model_decompress_faster () =
  let c = Compress.Model.compress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  let d = Compress.Model.decompress_seconds ~algo:Compress.Algo.Deflate ~bytes:1_000_000 ~zero_bytes:0 in
  Alcotest.(check bool) "gunzip faster than gzip" true (d < c)

let () =
  Alcotest.run "compress"
    [
      ( "bitio",
        [
          Alcotest.test_case "round-trip" `Quick test_bitio_roundtrip;
          Alcotest.test_case "truncated" `Quick test_bitio_truncated;
          Alcotest.test_case "bit length" `Quick test_bitio_bit_length;
          prop_bitio_roundtrip;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "simple" `Quick test_huffman_simple;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "skewed" `Quick test_huffman_skewed;
          Alcotest.test_case "frequency/length order" `Quick test_huffman_optimality_order;
          Alcotest.test_case "empty alphabet rejected" `Quick test_huffman_no_symbols_rejected;
          prop_huffman_roundtrip;
        ] );
      ( "lz77",
        [
          Alcotest.test_case "empty" `Quick test_lz77_empty;
          Alcotest.test_case "text" `Quick test_lz77_text;
          Alcotest.test_case "random" `Quick test_lz77_random;
          Alcotest.test_case "zeros" `Quick test_lz77_zeros;
          Alcotest.test_case "finds matches" `Quick test_lz77_finds_matches;
          Alcotest.test_case "adversarial sizes" `Quick test_lz77_adversarial_sizes;
          prop_lz77_roundtrip;
        ] );
      ( "rle",
        [
          Alcotest.test_case "empty" `Quick test_rle_empty;
          Alcotest.test_case "runs" `Quick test_rle_runs;
          Alcotest.test_case "no runs" `Quick test_rle_no_runs;
          Alcotest.test_case "zeros shrink" `Quick test_rle_zeros_shrink;
          prop_rle_roundtrip;
        ] );
      ( "deflate",
        [
          Alcotest.test_case "empty" `Quick test_deflate_empty;
          Alcotest.test_case "text" `Quick test_deflate_text;
          Alcotest.test_case "random" `Quick test_deflate_random;
          Alcotest.test_case "zeros" `Quick test_deflate_zeros;
          Alcotest.test_case "compresses text" `Quick test_deflate_compresses_text;
          Alcotest.test_case "zeros compress hard" `Quick test_deflate_zeros_tiny;
          Alcotest.test_case "random no blowup" `Quick test_deflate_random_no_blowup;
          Alcotest.test_case "adversarial sizes" `Quick test_deflate_adversarial_sizes;
          prop_deflate_roundtrip;
          prop_deflate_roundtrip_runs;
        ] );
      ( "container",
        [
          Alcotest.test_case "round-trip all algos" `Quick test_container_roundtrip_all_algos;
          Alcotest.test_case "detects corruption" `Quick test_container_detects_corruption;
          Alcotest.test_case "bad magic" `Quick test_container_bad_magic;
        ] );
      ( "model",
        [
          Alcotest.test_case "compression slower than disk" `Quick test_model_compressed_slower_than_disk;
          Alcotest.test_case "zeros faster" `Quick test_model_zeros_faster;
          Alcotest.test_case "decompress faster" `Quick test_model_decompress_faster;
        ] );
    ]
