(* Tests for the checkpoint-driven batch scheduler: pure policy
   decisions, the canned three-job preempt/fail/drain scenario judged
   against its no-fault reference, end-to-end determinism, and a seeded
   chaos corpus (SCHED_SEEDS scales the seed count). *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* pure policy *)

let test_place () =
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "lowest-numbered free nodes"
    (Some [| 1; 3 |])
    (Sched.Policy.place ~free:[ 7; 3; 5; 1 ] ~want:2);
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "too few free nodes" None
    (Sched.Policy.place ~free:[ 4 ] ~want:2);
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "zero nodes is trivially placeable" (Some [||])
    (Sched.Policy.place ~free:[] ~want:0)

let cd id priority nodes = { Sched.Policy.cd_id = id; cd_priority = priority; cd_nodes = nodes }

let test_victims () =
  let running = [ cd 0 1 2; cd 1 1 2; cd 2 5 4 ] in
  (* equal-priority jobs are not eligible: only the prio-1 pair can fall
     to a prio-5 arrival, lowest priority first, youngest on ties *)
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "youngest of the lowest priority goes first" (Some [ 1 ])
    (Sched.Policy.victims ~running ~need:2 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "several victims accumulate" (Some [ 1; 0 ])
    (Sched.Policy.victims ~running ~need:4 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "equal priority never preempted" None
    (Sched.Policy.victims ~running ~need:2 ~priority:1);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "not enough eligible nodes" None
    (Sched.Policy.victims ~running ~need:6 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "lower priority falls before higher" (Some [ 1; 0; 2 ])
    (Sched.Policy.victims
       ~running:[ cd 0 1 2; cd 1 1 2; cd 2 3 2 ]
       ~need:6 ~priority:9)

let test_queue_order () =
  check
    (Alcotest.list Alcotest.int)
    "priority desc, submit asc, id asc"
    [ 2; 0; 3; 1 ]
    (Sched.Policy.queue_order [ (0, 1, 0.0); (1, 0, 0.0); (2, 5, 3.0); (3, 1, 0.0) ])

(* ------------------------------------------------------------------ *)
(* the canned scenario: all three policies, judged against a no-fault
   reference run *)

let test_demo_faulted_matches_reference () =
  let reference = Chaos.Sched_demo.run ~faults:false () in
  let faulted = Chaos.Sched_demo.run ~faults:true () in
  (match Chaos.Sched_demo.check ~reference faulted with
  | [] -> ()
  | violations -> Alcotest.fail (String.concat "; " violations));
  (* the reference run still sees the preemption (the big arrival is not
     a fault) but no node failure, no drain *)
  let rs = reference.Chaos.Sched_demo.d_sched in
  check Alcotest.int "reference preempts too" 1 (Sched.Scheduler.preemptions rs);
  check Alcotest.int "reference has no node failure" 0 (Sched.Scheduler.node_failures rs);
  check Alcotest.int "reference has no drain" 0 (Sched.Scheduler.drains rs);
  Alcotest.(check bool)
    "faults cost lost work" true
    (Sched.Scheduler.total_lost_work faulted.Chaos.Sched_demo.d_sched > 0.);
  Alcotest.(check bool)
    "makespan is positive" true
    (Sched.Scheduler.makespan faulted.Chaos.Sched_demo.d_sched > 0.)

let test_demo_deterministic () =
  let a = Chaos.Sched_demo.run ~faults:true () in
  let b = Chaos.Sched_demo.run ~faults:true () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))))
    "verdicts identical across runs" a.Chaos.Sched_demo.d_outputs b.Chaos.Sched_demo.d_outputs;
  check (Alcotest.float 0.) "makespan identical"
    (Sched.Scheduler.makespan a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.makespan b.Chaos.Sched_demo.d_sched);
  check (Alcotest.float 0.) "lost work identical"
    (Sched.Scheduler.total_lost_work a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.total_lost_work b.Chaos.Sched_demo.d_sched);
  check Alcotest.int "restart count identical"
    (Sched.Scheduler.restarts a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.restarts b.Chaos.Sched_demo.d_sched)

(* ------------------------------------------------------------------ *)
(* seeded chaos corpus *)

let corpus_count () =
  match Sys.getenv_opt "SCHED_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 25)
  | None -> 25

let test_chaos_corpus () =
  let count = corpus_count () in
  let failures = Chaos.Sched_fault.run_seeds ~base:0 ~count () in
  match failures with
  | [] -> ()
  | r :: _ ->
    Alcotest.fail
      (Printf.sprintf "%d/%d seed(s) failed; first: %s — %s" (List.length failures) count
         (Chaos.Sched_fault.describe r.Chaos.Sched_fault.r_plan)
         (String.concat "; " r.Chaos.Sched_fault.r_violations))

let () =
  Alcotest.run "sched"
    [
      ( "policy",
        [
          Alcotest.test_case "place" `Quick test_place;
          Alcotest.test_case "victims" `Quick test_victims;
          Alcotest.test_case "queue order" `Quick test_queue_order;
        ] );
      ( "demo",
        [
          Alcotest.test_case "faulted run matches no-fault reference" `Quick
            test_demo_faulted_matches_reference;
          Alcotest.test_case "deterministic" `Quick test_demo_deterministic;
        ] );
      ( "chaos",
        [ Alcotest.test_case "seed corpus" `Slow test_chaos_corpus ] );
    ]
