(* Tests for the checkpoint-driven batch scheduler: pure policy
   decisions, the canned three-job preempt/fail/drain scenario judged
   against its no-fault reference, end-to-end determinism, and a seeded
   chaos corpus (SCHED_SEEDS scales the seed count). *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* pure policy *)

let test_place () =
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "lowest-numbered free nodes"
    (Some [| 1; 3 |])
    (Sched.Policy.place ~free:[ 7; 3; 5; 1 ] ~want:2);
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "too few free nodes" None
    (Sched.Policy.place ~free:[ 4 ] ~want:2);
  check
    (Alcotest.option (Alcotest.array Alcotest.int))
    "zero nodes is trivially placeable" (Some [||])
    (Sched.Policy.place ~free:[] ~want:0)

let cd id priority nodes = { Sched.Policy.cd_id = id; cd_priority = priority; cd_nodes = nodes }

let test_victims () =
  let running = [ cd 0 1 2; cd 1 1 2; cd 2 5 4 ] in
  (* equal-priority jobs are not eligible: only the prio-1 pair can fall
     to a prio-5 arrival, lowest priority first, youngest on ties *)
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "youngest of the lowest priority goes first" (Some [ 1 ])
    (Sched.Policy.victims ~running ~need:2 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "several victims accumulate" (Some [ 1; 0 ])
    (Sched.Policy.victims ~running ~need:4 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "equal priority never preempted" None
    (Sched.Policy.victims ~running ~need:2 ~priority:1);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "not enough eligible nodes" None
    (Sched.Policy.victims ~running ~need:6 ~priority:5);
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "lower priority falls before higher" (Some [ 1; 0; 2 ])
    (Sched.Policy.victims
       ~running:[ cd 0 1 2; cd 1 1 2; cd 2 3 2 ]
       ~need:6 ~priority:9)

let test_queue_order () =
  check
    (Alcotest.list Alcotest.int)
    "priority desc, submit asc, id asc"
    [ 2; 0; 3; 1 ]
    (Sched.Policy.queue_order [ (0, 1, 0.0); (1, 0, 0.0); (2, 5, 3.0); (3, 1, 0.0) ])

(* ------------------------------------------------------------------ *)
(* deadline semantics: both comparisons are inclusive (a poll landing
   exactly on the boundary decides, instead of waiting a whole extra
   tick) *)

let test_deadline_boundaries () =
  Alcotest.(check bool)
    "age exactly at the timeout has timed out" true
    (Sched.Deadline.op_timed_out ~now:61.0 ~since:1.0 ~timeout:60.0);
  Alcotest.(check bool)
    "age just under the timeout has not" false
    (Sched.Deadline.op_timed_out ~now:60.999 ~since:1.0 ~timeout:60.0);
  Alcotest.(check bool)
    "age past the timeout has timed out" true
    (Sched.Deadline.op_timed_out ~now:100.0 ~since:1.0 ~timeout:60.0);
  Alcotest.(check bool)
    "a record stamped at the request instant satisfies the guard" true
    (Sched.Deadline.since_satisfied ~started:5.0 ~since:5.0);
  Alcotest.(check bool)
    "a record from just before the request does not" false
    (Sched.Deadline.since_satisfied ~started:4.999 ~since:5.0);
  Alcotest.(check bool)
    "a later record satisfies the guard" true
    (Sched.Deadline.since_satisfied ~started:6.0 ~since:5.0)

(* ------------------------------------------------------------------ *)
(* restart-script remap: a host occupying several slots of the old
   allocation must spread its images over the same positions of the new
   allocation, not collapse them onto one host *)

let script_testable =
  let pp fmt (s : Dmtcp.Restart_script.t) =
    Format.fprintf fmt "coord %d:%d entries %s" s.Dmtcp.Restart_script.coord_host
      s.Dmtcp.Restart_script.coord_port
      (String.concat "; "
         (List.map
            (fun (h, imgs) -> Printf.sprintf "%d->[%s]" h (String.concat "," imgs))
            s.Dmtcp.Restart_script.entries))
  in
  Alcotest.testable pp ( = )

let test_remap_positional_duplicates () =
  let script =
    {
      Dmtcp.Restart_script.coord_host = 4;
      coord_port = 7811;
      entries = [ (4, [ "/ckpt/a.img"; "/ckpt/b.img" ]); (7, [ "/ckpt/c.img" ]) ];
    }
  in
  let old_alloc = [| 4; 7; 4 |] in
  let new_alloc = [| 1; 2; 3 |] in
  (* node 4 held slots 0 and 2; its two images must land on new slots 0
     and 2 (nodes 1 and 3), one each; node 7 held slot 1 -> node 2 *)
  check script_testable "duplicate-node slots stay distinct"
    {
      Dmtcp.Restart_script.coord_host = 1;
      coord_port = 7811;
      entries = [ (1, [ "/ckpt/a.img" ]); (2, [ "/ckpt/c.img" ]); (3, [ "/ckpt/b.img" ]) ];
    }
    (Dmtcp.Restart_script.remap_positional script ~old_alloc ~new_alloc);
  (* the host-level remap cannot represent this: both of node 4's images
     follow the same host mapping, collapsing two slots onto one node *)
  let collapsed = Dmtcp.Restart_script.remap script (fun h -> if h = 4 then 1 else 2) in
  check script_testable "host-level remap collapses the duplicate slots"
    {
      Dmtcp.Restart_script.coord_host = 1;
      coord_port = 7811;
      entries = [ (1, [ "/ckpt/a.img"; "/ckpt/b.img" ]); (2, [ "/ckpt/c.img" ]) ];
    }
    collapsed;
  (* identity remap round-trips *)
  check script_testable "identity"
    script
    (Dmtcp.Restart_script.remap_positional script ~old_alloc ~new_alloc:old_alloc);
  (* positions beyond the new allocation keep their old host *)
  check script_testable "short new allocation keeps tail in place"
    {
      Dmtcp.Restart_script.coord_host = 9;
      coord_port = 7811;
      entries = [ (2, [ "/ckpt/c.img" ]); (4, [ "/ckpt/b.img" ]); (9, [ "/ckpt/a.img" ]) ];
    }
    (Dmtcp.Restart_script.remap_positional script ~old_alloc ~new_alloc:[| 9; 2 |])

(* ------------------------------------------------------------------ *)
(* conflict-admission property: for random interleavings of enqueues and
   completions, no two conflicting ops are ever in flight together,
   every op starts exactly once, and conflicting ops start in enqueue
   order (with max_inflight=1 the start order is exactly the enqueue
   order — the serialized baseline) *)

let opq_drive ~max_inflight specs schedule =
  (* synthetic op: (id, job, node); conflict = same job or same node *)
  let conflict (_, j1, n1) (_, j2, n2) = j1 = j2 || n1 = n2 in
  let ops = List.mapi (fun i (j, n) -> (i, j, n)) specs in
  let q = Sched.Opq.create ~max_inflight ~conflict ~key:(fun (_, j, _) -> j) () in
  let started = ref [] in
  let start op =
    started := op :: !started;
    true
  in
  let ok = ref true in
  let assert_inflight () =
    let live =
      List.filter (fun (e : _ Sched.Opq.entry) -> not e.Sched.Opq.e_aborted)
        (Sched.Opq.inflight q)
    in
    if max_inflight > 0 && List.length (Sched.Opq.inflight q) > max_inflight then ok := false;
    List.iteri
      (fun i a ->
        List.iteri
          (fun k b ->
            if i < k && conflict a.Sched.Opq.e_op b.Sched.Opq.e_op then ok := false)
          live)
      live
  in
  let picks = ref schedule in
  let complete_one () =
    match Sched.Opq.inflight q with
    | [] -> ()
    | entries ->
      let pick = match !picks with p :: rest -> picks := rest; p | [] -> 0 in
      Sched.Opq.remove q (List.nth entries (pick mod List.length entries))
  in
  List.iteri
    (fun i op ->
      Sched.Opq.enqueue q op;
      Sched.Opq.admit q ~now:(float_of_int i) ~start ();
      assert_inflight ();
      (* complete an in-flight entry every other enqueue, per the plan *)
      if i mod 2 = 1 then begin
        complete_one ();
        Sched.Opq.admit q ~now:(float_of_int i) ~start ();
        assert_inflight ()
      end)
    ops;
  (* drain: admission must always make progress while anything is queued *)
  let guard = ref 0 in
  while (not (Sched.Opq.is_idle q)) && !guard < 10_000 do
    incr guard;
    Sched.Opq.admit q ~now:1e6 ~start ();
    assert_inflight ();
    complete_one ()
  done;
  if not (Sched.Opq.is_idle q) then ok := false;
  (ops, List.rev !started, !ok)

let opq_plan = QCheck.(pair (list_of_size Gen.(int_bound 40) (pair (int_bound 4) (int_bound 5))) (small_list small_nat))

let prop_opq_conflicts =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"opq: conflicting ops serialize in enqueue order"
       opq_plan
       (fun (specs, schedule) ->
         let ops, started, ok = opq_drive ~max_inflight:0 specs schedule in
         let posn = Hashtbl.create 64 in
         List.iteri (fun i op -> Hashtbl.replace posn op i) started;
         let pos op = Option.value ~default:(-1) (Hashtbl.find_opt posn op) in
         ok
         (* every op started exactly once *)
         && List.sort compare started = List.sort compare ops
         (* conflicting pairs start in enqueue (id) order *)
         && List.for_all
              (fun ((i1, j1, n1) as a) ->
                List.for_all
                  (fun ((i2, j2, n2) as b) ->
                    i1 >= i2 || (j1 <> j2 && n1 <> n2) || pos a < pos b)
                  ops)
              ops))

let prop_opq_serialized_baseline =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"opq: max_inflight=1 starts in strict enqueue order"
       opq_plan
       (fun (specs, schedule) ->
         let ops, started, ok = opq_drive ~max_inflight:1 specs schedule in
         ok && started = ops))

(* ------------------------------------------------------------------ *)
(* coalescing regression: a preemption arriving while the victim's
   interval checkpoint is still in flight must reuse that round, not
   issue a second checkpoint (the double-checkpoint bug) *)

let counter_spec ~name ~nodes ~priority ~target =
  let out i = Printf.sprintf "/data/%s_%d" name i in
  {
    Sched.Job.sp_name = name;
    sp_nodes = nodes;
    sp_priority = priority;
    sp_est_runtime = float_of_int target *. 1e-3;
    sp_procs = nodes;
    sp_launch =
      (fun a ->
        List.init nodes (fun i -> (a.(i), "p:counter", [ string_of_int target; out i ])));
    sp_outputs = (fun a -> List.init nodes (fun i -> (a.(i), out i)));
  }

let test_preempt_coalesces_with_inflight_ckpt () =
  Chaos.Progs.ensure_registered ();
  let options =
    { Dmtcp.Options.default with Dmtcp.Options.store = true; store_replicas = 2 }
  in
  let env = Harness.Common.setup ~nodes:4 ~cores_per_node:2 ~options () in
  let cl = env.Harness.Common.cl in
  (* slow every storage target so a checkpoint round spans many scheduler
     ticks — wide window for the preemptor to land mid-checkpoint *)
  for n = 0 to 3 do
    Storage.Target.set_slowdown (Simos.Cluster.target cl n) 1_000_000.
  done;
  let sched = Sched.Scheduler.create ~ckpt_interval:1.0 cl env.Harness.Common.rt in
  let victim = Sched.Scheduler.submit sched (counter_spec ~name:"victim" ~nodes:2 ~priority:1 ~target:5000) in
  let eng = Simos.Cluster.engine cl in
  let submitted = ref false in
  let rounds_at_submit = ref (-1) in
  let rounds_at_requeue = ref (-1) in
  (* victim's coordinator domain: base_port + job id *)
  let port = 7800 + victim.Sched.Job.id in
  let rec probe () =
    let rounds = Dmtcp.Runtime.ckpt_rounds ~port env.Harness.Common.rt in
    (match (Sched.Scheduler.job sched victim.Sched.Job.id).Sched.Job.phase with
    | Sched.Job.Checkpointing when (not !submitted) && rounds >= 2 ->
      (* the second interval round is in flight (its start has been
         counted) and, with the degraded targets, stays in flight for
         many scheduler ticks: the preemptor's stop must land inside it *)
      submitted := true;
      rounds_at_submit := rounds;
      (* 3 of 4 nodes wanted, only 2 free -> the victim must fall *)
      ignore
        (Sched.Scheduler.submit sched (counter_spec ~name:"pre" ~nodes:3 ~priority:5 ~target:500))
    | Sched.Job.Requeued when !submitted && !rounds_at_requeue < 0 ->
      rounds_at_requeue := rounds
    | _ -> ());
    if !rounds_at_requeue < 0 then ignore (Sim.Engine.schedule eng ~delay:0.01 probe)
  in
  ignore (Sim.Engine.schedule eng ~delay:0.01 probe);
  let unfinished = Sched.Scheduler.run ~until:600. sched in
  check Alcotest.int "all jobs finished" 0 unfinished;
  check (Alcotest.list Alcotest.string) "no invariant violations" []
    (Sched.Scheduler.violations sched);
  Alcotest.(check bool) "preemptor landed mid-checkpoint" true !submitted;
  check Alcotest.int "one preemption" 1 (Sched.Scheduler.preemptions sched);
  Alcotest.(check bool) "victim was requeued" true (!rounds_at_requeue >= 0);
  (* the in-flight interval round IS the stop's checkpoint: between the
     preemption request and the requeue no further round may start in
     the victim's domain.  The double-checkpoint bug issued a second
     [Api.checkpoint] here, giving [rounds_at_submit + 1]. *)
  check Alcotest.int "stop coalesced with the in-flight checkpoint round"
    !rounds_at_submit !rounds_at_requeue;
  check Alcotest.int "victim restarted from the coalesced image" 1
    (Sched.Scheduler.restarts sched)

(* ------------------------------------------------------------------ *)
(* the canned scenario: all three policies, judged against a no-fault
   reference run *)

let test_demo_faulted_matches_reference () =
  let reference = Chaos.Sched_demo.run ~faults:false () in
  let faulted = Chaos.Sched_demo.run ~faults:true () in
  (match Chaos.Sched_demo.check ~reference faulted with
  | [] -> ()
  | violations -> Alcotest.fail (String.concat "; " violations));
  (* the reference run still sees the preemption (the big arrival is not
     a fault) but no node failure, no drain *)
  let rs = reference.Chaos.Sched_demo.d_sched in
  check Alcotest.int "reference preempts too" 1 (Sched.Scheduler.preemptions rs);
  check Alcotest.int "reference has no node failure" 0 (Sched.Scheduler.node_failures rs);
  check Alcotest.int "reference has no drain" 0 (Sched.Scheduler.drains rs);
  Alcotest.(check bool)
    "faults cost lost work" true
    (Sched.Scheduler.total_lost_work faulted.Chaos.Sched_demo.d_sched > 0.);
  Alcotest.(check bool)
    "makespan is positive" true
    (Sched.Scheduler.makespan faulted.Chaos.Sched_demo.d_sched > 0.)

let test_demo_deterministic () =
  let a = Chaos.Sched_demo.run ~faults:true () in
  let b = Chaos.Sched_demo.run ~faults:true () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))))
    "verdicts identical across runs" a.Chaos.Sched_demo.d_outputs b.Chaos.Sched_demo.d_outputs;
  check (Alcotest.float 0.) "makespan identical"
    (Sched.Scheduler.makespan a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.makespan b.Chaos.Sched_demo.d_sched);
  check (Alcotest.float 0.) "lost work identical"
    (Sched.Scheduler.total_lost_work a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.total_lost_work b.Chaos.Sched_demo.d_sched);
  check Alcotest.int "restart count identical"
    (Sched.Scheduler.restarts a.Chaos.Sched_demo.d_sched)
    (Sched.Scheduler.restarts b.Chaos.Sched_demo.d_sched)

(* scaled-down slice of the 1000-job demo: same shape (deep queue of
   staggered single-node jobs, prio-5 batch, node loss, drain) on a
   smaller cluster, judged against its no-fault reference *)
let test_demo1k_smoke () =
  let reference = Chaos.Sched_demo1k.run ~jobs:150 ~nodes:16 ~faults:false () in
  let faulted = Chaos.Sched_demo1k.run ~jobs:150 ~nodes:16 ~faults:true () in
  (match Chaos.Sched_demo1k.check ~reference faulted with
  | [] -> ()
  | violations -> Alcotest.fail (String.concat "; " violations));
  Alcotest.(check bool)
    "ops overlap in flight (>= 8)" true
    (Sched.Scheduler.peak_ops_inflight faulted.Chaos.Sched_demo1k.k_sched >= 8)

(* ------------------------------------------------------------------ *)
(* seeded chaos corpus *)

let corpus_count () =
  match Sys.getenv_opt "SCHED_SEEDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 25)
  | None -> 25

let test_chaos_corpus () =
  let count = corpus_count () in
  let failures = Chaos.Sched_fault.run_seeds ~base:0 ~count () in
  match failures with
  | [] -> ()
  | r :: _ ->
    Alcotest.fail
      (Printf.sprintf "%d/%d seed(s) failed; first: %s — %s" (List.length failures) count
         (Chaos.Sched_fault.describe r.Chaos.Sched_fault.r_plan)
         (String.concat "; " r.Chaos.Sched_fault.r_violations))

let () =
  Alcotest.run "sched"
    [
      ( "policy",
        [
          Alcotest.test_case "place" `Quick test_place;
          Alcotest.test_case "victims" `Quick test_victims;
          Alcotest.test_case "queue order" `Quick test_queue_order;
          Alcotest.test_case "deadline boundaries" `Quick test_deadline_boundaries;
        ] );
      ( "remap",
        [
          Alcotest.test_case "positional remap keeps duplicate-node slots distinct" `Quick
            test_remap_positional_duplicates;
        ] );
      ( "opq",
        [
          prop_opq_conflicts;
          prop_opq_serialized_baseline;
          Alcotest.test_case "preempt coalesces with in-flight checkpoint" `Quick
            test_preempt_coalesces_with_inflight_ckpt;
        ] );
      ( "demo",
        [
          Alcotest.test_case "faulted run matches no-fault reference" `Quick
            test_demo_faulted_matches_reference;
          Alcotest.test_case "deterministic" `Quick test_demo_deterministic;
          Alcotest.test_case "1000-job demo, scaled-down slice" `Slow test_demo1k_smoke;
        ] );
      ( "chaos",
        [ Alcotest.test_case "seed corpus" `Slow test_chaos_corpus ] );
    ]
