(* Tests for the network fabric: connection establishment, buffered
   transfer with latency/bandwidth, flow control, EOF, refusal, UNIX
   sockets, socketpairs, and the discovery service. *)

let check = Alcotest.check

let setup ?latency ?bandwidth () =
  let eng = Sim.Engine.create () in
  let fab = Simnet.Fabric.create eng ?latency ?bandwidth ~nhosts:4 () in
  (eng, fab)

let listen_on fab ~host ~port =
  let l = Simnet.Fabric.socket fab ~host in
  (match Simnet.Fabric.bind l ~port with Ok _ -> () | Error e -> Alcotest.failf "bind: %s" (Simnet.Fabric.pp_error e));
  (match Simnet.Fabric.listen l ~backlog:8 with Ok () -> () | Error e -> Alcotest.failf "listen: %s" (Simnet.Fabric.pp_error e));
  l

let connect_pair ?latency ?bandwidth ?(host_a = 0) ?(host_b = 1) () =
  let eng, fab = setup ?latency ?bandwidth () in
  let l = listen_on fab ~host:host_b ~port:5000 in
  let c = Simnet.Fabric.socket fab ~host:host_a in
  (match Simnet.Fabric.connect c (Simnet.Addr.Inet { host = host_b; port = 5000 }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "connect: %s" (Simnet.Fabric.pp_error e));
  Sim.Engine.run eng;
  let s =
    match Simnet.Fabric.accept l with
    | Some s -> s
    | None -> Alcotest.fail "no pending connection"
  in
  (eng, fab, c, s, l)

let recv_exact eng sock n =
  let buf = Buffer.create n in
  let guard = ref 0 in
  while Buffer.length buf < n && !guard < 10_000 do
    (match Simnet.Fabric.recv sock ~max:(n - Buffer.length buf) with
    | `Data d -> Buffer.add_string buf d
    | `Would_block -> Sim.Engine.run eng
    | `Eof -> Alcotest.fail "unexpected EOF"
    | `Error e -> Alcotest.failf "recv: %s" (Simnet.Fabric.pp_error e));
    incr guard
  done;
  Buffer.contents buf

let send_all eng sock data =
  let sent = ref 0 in
  let guard = ref 0 in
  while !sent < String.length data && !guard < 10_000 do
    (match Simnet.Fabric.send sock (String.sub data !sent (String.length data - !sent)) with
    | Ok n -> sent := !sent + n
    | Error e -> Alcotest.failf "send: %s" (Simnet.Fabric.pp_error e));
    if !sent < String.length data then Sim.Engine.run eng;
    incr guard
  done

let test_connect_accept () =
  let _, _, c, s, _ = connect_pair () in
  check Alcotest.bool "client established" true (Simnet.Fabric.state c = Simnet.Fabric.Established);
  check Alcotest.bool "server established" true (Simnet.Fabric.state s = Simnet.Fabric.Established)

let test_connect_takes_rtt () =
  let eng, fab = setup () in
  let _l = listen_on fab ~host:1 ~port:5000 in
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 5000 }));
  Sim.Engine.run eng;
  (* RTT = 2 * 100us default latency *)
  check (Alcotest.float 1e-9) "connect completes after one RTT" 200e-6 (Sim.Engine.now eng)

let test_send_recv () =
  let eng, _, c, s, _ = connect_pair () in
  send_all eng c "hello from client";
  Sim.Engine.run eng;
  check Alcotest.string "server receives" "hello from client" (recv_exact eng s 17);
  send_all eng s "hello from server";
  Sim.Engine.run eng;
  check Alcotest.string "client receives" "hello from server" (recv_exact eng c 17)

(* Drive a full transfer, interleaving sends and receives so flow control
   can make progress. *)
let transfer eng src dst data =
  let sent = ref 0 in
  let buf = Buffer.create (String.length data) in
  let guard = ref 0 in
  while Buffer.length buf < String.length data && !guard < 100_000 do
    (if !sent < String.length data then
       match Simnet.Fabric.send src (String.sub data !sent (String.length data - !sent)) with
       | Ok n -> sent := !sent + n
       | Error e -> Alcotest.failf "send: %s" (Simnet.Fabric.pp_error e));
    (match Simnet.Fabric.recv dst ~max:65536 with
    | `Data d -> Buffer.add_string buf d
    | `Would_block -> ()
    | `Eof -> Alcotest.fail "unexpected EOF"
    | `Error e -> Alcotest.failf "recv: %s" (Simnet.Fabric.pp_error e));
    Sim.Engine.run eng;
    incr guard
  done;
  Buffer.contents buf

let test_bandwidth_timing () =
  (* 1 MB at 1 MB/s should take about a second. *)
  let eng, _, c, s, _ = connect_pair ~latency:1e-4 ~bandwidth:1e6 () in
  let data = String.make 1_000_000 'x' in
  let t0 = Sim.Engine.now eng in
  let got = transfer eng c s data in
  check Alcotest.int "all bytes arrive" (String.length data) (String.length got);
  let elapsed = Sim.Engine.now eng -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "took ~1s (got %f)" elapsed)
    true
    (elapsed > 0.9 && elapsed < 1.5)

let test_flow_control () =
  (* Without the receiver draining, at most send buffer + in flight +
     receive buffer bytes can leave the sender. *)
  let eng, _, c, _, _ = connect_pair () in
  let data = String.make (1024 * 1024) 'y' in
  let accepted = ref 0 in
  (match Simnet.Fabric.send c data with Ok n -> accepted := n | Error _ -> Alcotest.fail "send");
  Sim.Engine.run eng;
  (* Send buffer accepted one capacity's worth at most. *)
  Alcotest.(check bool) "bounded by buffer capacity" true (!accepted <= Simnet.Fabric.buffer_capacity);
  (* Pump until stable: total moved <= 2 * capacity. *)
  let total_sent = ref !accepted in
  let progress = ref true in
  while !progress do
    progress := false;
    match Simnet.Fabric.send c (String.make 65536 'z') with
    | Ok n when n > 0 ->
      total_sent := !total_sent + n;
      progress := true;
      Sim.Engine.run eng
    | _ -> Sim.Engine.run eng
  done;
  Alcotest.(check bool) "sender eventually blocked" true (!total_sent <= 2 * Simnet.Fabric.buffer_capacity + 16384)

let test_in_flight_accounting () =
  let eng, _, c, s, _ = connect_pair ~latency:0.01 ~bandwidth:1e9 () in
  ignore (Simnet.Fabric.send c (String.make 1000 'a'));
  (* Run only a hair forward: data should be in flight, not yet arrived. *)
  Sim.Engine.run ~until:(Sim.Engine.now eng +. 0.001) eng;
  Alcotest.(check bool) "bytes in flight" true (Simnet.Fabric.in_flight c > 0);
  Sim.Engine.run eng;
  check Alcotest.int "in flight drained" 0 (Simnet.Fabric.in_flight c);
  check Alcotest.int "arrived" 1000 (Simnet.Fabric.recv_buffered s)

let test_eof_after_close () =
  let eng, _, c, s, _ = connect_pair () in
  send_all eng c "bye";
  Simnet.Fabric.close c;
  Sim.Engine.run eng;
  check Alcotest.string "data before EOF" "bye" (recv_exact eng s 3);
  (match Simnet.Fabric.recv s ~max:10 with
  | `Eof -> ()
  | `Data _ | `Would_block | `Error _ -> Alcotest.fail "expected EOF")

let test_connection_refused () =
  let eng, fab = setup () in
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 9999 }));
  Sim.Engine.run eng;
  check Alcotest.bool "closed" true (Simnet.Fabric.state c = Simnet.Fabric.Closed);
  check Alcotest.bool "refused" true (Simnet.Fabric.connect_refused c)

let test_bind_conflict () =
  let _, fab = setup () in
  let _l = listen_on fab ~host:0 ~port:7000 in
  let l2 = Simnet.Fabric.socket fab ~host:0 in
  (match Simnet.Fabric.bind l2 ~port:7000 with
  | Ok _ -> (
    match Simnet.Fabric.listen l2 ~backlog:1 with
    | Error Simnet.Fabric.Addr_in_use -> ()
    | _ -> Alcotest.fail "expected Addr_in_use at listen")
  | Error Simnet.Fabric.Addr_in_use -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Simnet.Fabric.pp_error e))

let test_ephemeral_bind () =
  let _, fab = setup () in
  let s = Simnet.Fabric.socket fab ~host:0 in
  match Simnet.Fabric.bind s ~port:0 with
  | Ok port -> Alcotest.(check bool) "ephemeral port high" true (port >= 32768)
  | Error e -> Alcotest.failf "bind: %s" (Simnet.Fabric.pp_error e)

let test_backlog_refuses_excess () =
  let eng, fab = setup () in
  let l = Simnet.Fabric.socket fab ~host:1 in
  ignore (Simnet.Fabric.bind l ~port:5000);
  ignore (Simnet.Fabric.listen l ~backlog:1);
  let c1 = Simnet.Fabric.socket fab ~host:0 in
  let c2 = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c1 (Simnet.Addr.Inet { host = 1; port = 5000 }));
  ignore (Simnet.Fabric.connect c2 (Simnet.Addr.Inet { host = 1; port = 5000 }));
  Sim.Engine.run eng;
  let ok1 = Simnet.Fabric.state c1 = Simnet.Fabric.Established in
  let ok2 = Simnet.Fabric.state c2 = Simnet.Fabric.Established in
  Alcotest.(check bool) "exactly one accepted" true (ok1 <> ok2 || (ok1 && not ok2))

let test_close_listener_refuses_pending () =
  let eng, fab = setup () in
  let l = listen_on fab ~host:1 ~port:5000 in
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 5000 }));
  Sim.Engine.run eng;
  Simnet.Fabric.close l;
  Alcotest.(check bool) "pending client refused" true (Simnet.Fabric.connect_refused c)

let test_unix_socketpair () =
  let eng, fab = setup () in
  let a, b = Simnet.Fabric.socketpair fab ~host:2 in
  send_all eng a "ping";
  Sim.Engine.run eng;
  check Alcotest.string "pair delivers" "ping" (recv_exact eng b 4);
  Alcotest.(check bool) "unix" true (Simnet.Fabric.is_unix a)

let test_unix_listener () =
  let eng, fab = setup () in
  let l = Simnet.Fabric.socket_unix fab ~host:0 in
  (match Simnet.Fabric.bind_unix l ~path:"/tmp/mpd.sock" with Ok () -> () | Error _ -> Alcotest.fail "bind_unix");
  ignore (Simnet.Fabric.listen l ~backlog:4);
  let c = Simnet.Fabric.socket_unix fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Unix { host = 0; path = "/tmp/mpd.sock" }));
  Sim.Engine.run eng;
  (match Simnet.Fabric.accept l with
  | Some s ->
    send_all eng c "unix!";
    Sim.Engine.run eng;
    check Alcotest.string "unix data" "unix!" (recv_exact eng s 5)
  | None -> Alcotest.fail "no unix connection")

let test_wake_callback () =
  let eng, _, c, s, _ = connect_pair () in
  let woken = ref false in
  Simnet.Fabric.on_activity s (fun () -> woken := true);
  send_all eng c "x";
  Sim.Engine.run eng;
  Alcotest.(check bool) "receiver woken" true !woken

let test_readable_writable () =
  let eng, _, c, s, _ = connect_pair () in
  Alcotest.(check bool) "fresh socket not readable" false (Simnet.Fabric.readable s);
  Alcotest.(check bool) "fresh socket writable" true (Simnet.Fabric.writable c);
  send_all eng c "data";
  Sim.Engine.run eng;
  Alcotest.(check bool) "readable after arrival" true (Simnet.Fabric.readable s)

let test_bidirectional_simultaneous () =
  let eng, _, c, s, _ = connect_pair () in
  ignore (Simnet.Fabric.send c "from-c");
  ignore (Simnet.Fabric.send s "from-s");
  Sim.Engine.run eng;
  check Alcotest.string "c->s" "from-c" (recv_exact eng s 6);
  check Alcotest.string "s->c" "from-s" (recv_exact eng c 6)

(* Property: an arbitrary interleaving of sends on both sides delivers
   exactly the sent byte streams, in order, on each direction. *)
let prop_stream_integrity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"byte streams preserved in order"
       QCheck.(small_list (pair bool (string_of_size QCheck.Gen.(1 -- 2000))))
       (fun msgs ->
         let eng, _, c, s, _ = connect_pair () in
         let expect_cs = Buffer.create 64 and expect_sc = Buffer.create 64 in
         List.iter
           (fun (dir, data) ->
             let src = if dir then c else s in
             (if dir then Buffer.add_string expect_cs data else Buffer.add_string expect_sc data);
             send_all eng src data;
             Sim.Engine.run eng)
           msgs;
         Sim.Engine.run eng;
         let got_cs = recv_exact eng s (Buffer.length expect_cs) in
         let got_sc = recv_exact eng c (Buffer.length expect_sc) in
         got_cs = Buffer.contents expect_cs && got_sc = Buffer.contents expect_sc))

(* ------------------------------------------------------------------ *)
(* Edge cases the chaos harness leans on *)

let test_connect_closed_listener () =
  (* the listener existed once; connecting after it closed is refusal,
     not a hang *)
  let eng, fab = setup () in
  let l = listen_on fab ~host:1 ~port:5000 in
  Simnet.Fabric.close l;
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 5000 }));
  Sim.Engine.run eng;
  check Alcotest.bool "refused" true (Simnet.Fabric.connect_refused c);
  check Alcotest.bool "closed" true (Simnet.Fabric.state c = Simnet.Fabric.Closed)

let test_double_bind_same_socket () =
  let _, fab = setup () in
  let s = Simnet.Fabric.socket fab ~host:0 in
  (match Simnet.Fabric.bind s ~port:8000 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first bind: %s" (Simnet.Fabric.pp_error e));
  match Simnet.Fabric.bind s ~port:8001 with
  | Error Simnet.Fabric.Already_bound -> ()
  | Ok _ -> Alcotest.fail "second bind accepted"
  | Error e -> Alcotest.failf "expected Already_bound, got %s" (Simnet.Fabric.pp_error e)

let test_double_bind_same_port () =
  let _, fab = setup () in
  let _l = listen_on fab ~host:0 ~port:8000 in
  let s2 = Simnet.Fabric.socket fab ~host:0 in
  match Simnet.Fabric.bind s2 ~port:8000 with
  | Error Simnet.Fabric.Addr_in_use -> ()
  | Error e -> Alcotest.failf "expected Addr_in_use, got %s" (Simnet.Fabric.pp_error e)
  | Ok _ -> (
    (* some stacks only detect the conflict at listen *)
    match Simnet.Fabric.listen s2 ~backlog:1 with
    | Error Simnet.Fabric.Addr_in_use -> ()
    | Ok () -> Alcotest.fail "two listeners on one port"
    | Error e -> Alcotest.failf "expected Addr_in_use, got %s" (Simnet.Fabric.pp_error e))

let test_recv_while_connecting () =
  let _, fab = setup () in
  let _l = listen_on fab ~host:1 ~port:5000 in
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 5000 }));
  (* engine has not run: SYN still in flight *)
  check Alcotest.bool "still connecting" true (Simnet.Fabric.state c = Simnet.Fabric.Connecting);
  match Simnet.Fabric.recv c ~max:10 with
  | `Error Simnet.Fabric.Not_connected -> ()
  | `Error e -> Alcotest.failf "expected Not_connected, got %s" (Simnet.Fabric.pp_error e)
  | `Data _ | `Eof | `Would_block -> Alcotest.fail "expected Not_connected error"

(* ------------------------------------------------------------------ *)
(* Fault-injection knobs (the chaos layer's interface) *)

let test_partition_defers_then_delivers () =
  let eng, fab, c, s, _ = (fun () -> connect_pair ()) () in
  Simnet.Fabric.set_link_up fab ~a:0 ~b:1 false;
  ignore (Simnet.Fabric.send c "held-back");
  (* parked senders retry forever: bound the run while partitioned *)
  Sim.Engine.run ~until:(Sim.Engine.now eng +. 1.0) eng;
  check Alcotest.int "nothing crosses a downed link" 0 (Simnet.Fabric.recv_buffered s);
  Simnet.Fabric.set_link_up fab ~a:0 ~b:1 true;
  Sim.Engine.run eng;
  check Alcotest.string "delivered after heal" "held-back" (recv_exact eng s 9)

let test_partition_refuses_syn () =
  let eng, fab = setup () in
  let _l = listen_on fab ~host:1 ~port:5000 in
  Simnet.Fabric.set_link_up fab ~a:0 ~b:1 false;
  let c = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c (Simnet.Addr.Inet { host = 1; port = 5000 }));
  Sim.Engine.run ~until:(Sim.Engine.now eng +. 1.0) eng;
  check Alcotest.bool "SYN across partition refused" true (Simnet.Fabric.connect_refused c);
  Simnet.Fabric.clear_faults fab

let test_latency_factor_stretches_delivery () =
  let measure factor =
    let eng, fab, c, s, _ = connect_pair ~latency:1e-3 () in
    if factor > 1.0 then Simnet.Fabric.set_latency_factor fab ~a:0 ~b:1 factor;
    let t0 = Sim.Engine.now eng in
    ignore (Simnet.Fabric.send c "x");
    let guard = ref 0 in
    while Simnet.Fabric.recv_buffered s = 0 && !guard < 1000 do
      Sim.Engine.run eng;
      incr guard
    done;
    Sim.Engine.now eng -. t0
  in
  let base = measure 1.0 in
  let slow = measure 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "x10 latency factor slows delivery (%.4fs -> %.4fs)" base slow)
    true
    (slow > base *. 5.)

let test_drop_penalizes_transfers () =
  let eng, fab, c, s, _ = connect_pair ~latency:1e-4 () in
  Simnet.Fabric.set_drop fab ~prob:1.0 (Util.Rng.create 42L);
  let t0 = Sim.Engine.now eng in
  ignore (Simnet.Fabric.send c "lossy");
  let guard = ref 0 in
  while Simnet.Fabric.recv_buffered s = 0 && !guard < 1000 do
    Sim.Engine.run eng;
    incr guard
  done;
  let elapsed = Sim.Engine.now eng -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "every chunk pays the retransmit timeout (%.3fs)" elapsed)
    true
    (elapsed >= Simnet.Fabric.retransmit_timeout);
  check Alcotest.string "data still arrives intact" "lossy" (recv_exact eng s 5);
  Simnet.Fabric.clear_faults fab

let test_peer_gone_after_close () =
  let eng, _, c, s, _ = connect_pair () in
  Alcotest.(check bool) "peer present while open" false (Simnet.Fabric.peer_gone s);
  Simnet.Fabric.close c;
  (* FIN may still be in flight: the peer is gone either way *)
  Alcotest.(check bool) "peer gone right after close" true (Simnet.Fabric.peer_gone s);
  Sim.Engine.run eng;
  Alcotest.(check bool) "still gone after FIN lands" true (Simnet.Fabric.peer_gone s)

let test_inject_eof_restores_half_closed () =
  (* restart path for a connection whose peer died before the
     checkpoint: drained bytes first, then EOF, and writes fail *)
  let _, fab = setup () in
  let s = Simnet.Fabric.socket fab ~host:0 in
  Simnet.Fabric.inject_eof s;
  check Alcotest.bool "established" true (Simnet.Fabric.state s = Simnet.Fabric.Established);
  Alcotest.(check bool) "peer gone" true (Simnet.Fabric.peer_gone s);
  Simnet.Fabric.inject_recv s "tail";
  (match Simnet.Fabric.recv s ~max:10 with
  | `Data d -> check Alcotest.string "drained bytes first" "tail" d
  | _ -> Alcotest.fail "expected drained data");
  (match Simnet.Fabric.recv s ~max:10 with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected EOF after the stash");
  match Simnet.Fabric.send s "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write on a half-closed restart must fail"

(* ------------------------------------------------------------------ *)
(* Discovery *)

let addr_testable =
  Alcotest.testable
    (fun fmt a -> Format.pp_print_string fmt (Simnet.Addr.to_string a))
    (fun a b -> a = b)

let test_discovery_lookup () =
  let d = Simnet.Discovery.create () in
  let addr = Simnet.Addr.Inet { host = 3; port = 1234 } in
  Simnet.Discovery.advertise d ~key:"conn-42" addr;
  check (Alcotest.option addr_testable) "lookup finds it" (Some addr)
    (Simnet.Discovery.lookup d ~key:"conn-42");
  check (Alcotest.option addr_testable) "missing key" None (Simnet.Discovery.lookup d ~key:"nope")

let test_discovery_subscribe_before () =
  let d = Simnet.Discovery.create () in
  let got = ref None in
  Simnet.Discovery.subscribe d ~key:"k" (fun a -> got := Some a);
  check (Alcotest.option addr_testable) "not yet" None !got;
  let addr = Simnet.Addr.Inet { host = 1; port = 2 } in
  Simnet.Discovery.advertise d ~key:"k" addr;
  check (Alcotest.option addr_testable) "delivered" (Some addr) !got

let test_discovery_subscribe_after () =
  let d = Simnet.Discovery.create () in
  let addr = Simnet.Addr.Inet { host = 1; port = 2 } in
  Simnet.Discovery.advertise d ~key:"k" addr;
  let got = ref None in
  Simnet.Discovery.subscribe d ~key:"k" (fun a -> got := Some a);
  check (Alcotest.option addr_testable) "immediate" (Some addr) !got

let test_discovery_multiple_subscribers () =
  let d = Simnet.Discovery.create () in
  let count = ref 0 in
  Simnet.Discovery.subscribe d ~key:"k" (fun _ -> incr count);
  Simnet.Discovery.subscribe d ~key:"k" (fun _ -> incr count);
  Simnet.Discovery.advertise d ~key:"k" (Simnet.Addr.Inet { host = 0; port = 1 });
  check Alcotest.int "both notified" 2 !count

let test_discovery_clear () =
  let d = Simnet.Discovery.create () in
  Simnet.Discovery.advertise d ~key:"k" (Simnet.Addr.Inet { host = 0; port = 1 });
  Simnet.Discovery.clear d;
  check Alcotest.int "empty after clear" 0 (Simnet.Discovery.size d)

let test_addr_codec () =
  List.iter
    (fun a ->
      let a' = Util.Codec.roundtrip Simnet.Addr.encode Simnet.Addr.decode a in
      Alcotest.(check bool) "addr round-trip" true (a = a'))
    [ Simnet.Addr.Inet { host = 3; port = 65000 }; Simnet.Addr.Unix { host = 0; path = "/tmp/x" } ]

let test_peer_id () =
  let _, _, c, s, _ = connect_pair () in
  check (Alcotest.option Alcotest.int) "c's peer is s" (Some (Simnet.Fabric.id s))
    (Simnet.Fabric.peer_id c);
  check (Alcotest.option Alcotest.int) "s's peer is c" (Some (Simnet.Fabric.id c))
    (Simnet.Fabric.peer_id s)

let test_inject_recv_ordering () =
  (* refill support: injected bytes precede later network arrivals *)
  let eng, _, c, s, _ = connect_pair () in
  Simnet.Fabric.inject_recv s "refilled-";
  send_all eng c "fresh";
  Sim.Engine.run eng;
  check Alcotest.string "refilled data reads out first" "refilled-fresh" (recv_exact eng s 14)

let test_nic_serializes_transfers () =
  (* two sockets sharing one sender NIC: their transfers share bandwidth *)
  let eng, fab = setup ~latency:1e-4 ~bandwidth:1e6 () in
  let l1 = listen_on fab ~host:1 ~port:5001 in
  let l2 = listen_on fab ~host:1 ~port:5002 in
  let c1 = Simnet.Fabric.socket fab ~host:0 in
  let c2 = Simnet.Fabric.socket fab ~host:0 in
  ignore (Simnet.Fabric.connect c1 (Simnet.Addr.Inet { host = 1; port = 5001 }));
  ignore (Simnet.Fabric.connect c2 (Simnet.Addr.Inet { host = 1; port = 5002 }));
  Sim.Engine.run eng;
  let s1 = Option.get (Simnet.Fabric.accept l1) in
  let s2 = Option.get (Simnet.Fabric.accept l2) in
  let data = String.make 500_000 'q' in
  let t0 = Sim.Engine.now eng in
  (* interleave: both transfers together must take ~1 s at 1 MB/s *)
  let b1 = Buffer.create 100 and b2 = Buffer.create 100 in
  let sent1 = ref 0 and sent2 = ref 0 in
  let guard = ref 0 in
  while (Buffer.length b1 < 500_000 || Buffer.length b2 < 500_000) && !guard < 200_000 do
    (if !sent1 < 500_000 then
       match Simnet.Fabric.send c1 (String.sub data !sent1 (500_000 - !sent1)) with
       | Ok n -> sent1 := !sent1 + n
       | Error _ -> ());
    (if !sent2 < 500_000 then
       match Simnet.Fabric.send c2 (String.sub data !sent2 (500_000 - !sent2)) with
       | Ok n -> sent2 := !sent2 + n
       | Error _ -> ());
    (match Simnet.Fabric.recv s1 ~max:65536 with `Data d -> Buffer.add_string b1 d | _ -> ());
    (match Simnet.Fabric.recv s2 ~max:65536 with `Data d -> Buffer.add_string b2 d | _ -> ());
    Sim.Engine.run eng;
    incr guard
  done;
  let elapsed = Sim.Engine.now eng -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "1 MB total through a shared 1 MB/s NIC takes ~1 s (got %.2f)" elapsed)
    true
    (elapsed > 0.9 && elapsed < 1.6)

let () =
  Alcotest.run "simnet"
    [
      ( "tcp",
        [
          Alcotest.test_case "connect/accept" `Quick test_connect_accept;
          Alcotest.test_case "connect takes RTT" `Quick test_connect_takes_rtt;
          Alcotest.test_case "send/recv" `Quick test_send_recv;
          Alcotest.test_case "bandwidth timing" `Quick test_bandwidth_timing;
          Alcotest.test_case "flow control" `Quick test_flow_control;
          Alcotest.test_case "in-flight accounting" `Quick test_in_flight_accounting;
          Alcotest.test_case "EOF after close" `Quick test_eof_after_close;
          Alcotest.test_case "connection refused" `Quick test_connection_refused;
          Alcotest.test_case "bind conflict" `Quick test_bind_conflict;
          Alcotest.test_case "ephemeral bind" `Quick test_ephemeral_bind;
          Alcotest.test_case "backlog refuses excess" `Quick test_backlog_refuses_excess;
          Alcotest.test_case "close listener refuses pending" `Quick test_close_listener_refuses_pending;
          Alcotest.test_case "wake callback" `Quick test_wake_callback;
          Alcotest.test_case "readable/writable" `Quick test_readable_writable;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_simultaneous;
          Alcotest.test_case "peer id" `Quick test_peer_id;
          Alcotest.test_case "inject_recv ordering" `Quick test_inject_recv_ordering;
          Alcotest.test_case "NIC serializes transfers" `Quick test_nic_serializes_transfers;
          prop_stream_integrity;
        ] );
      ( "edges",
        [
          Alcotest.test_case "connect to closed listener" `Quick test_connect_closed_listener;
          Alcotest.test_case "double bind, same socket" `Quick test_double_bind_same_socket;
          Alcotest.test_case "double bind, same port" `Quick test_double_bind_same_port;
          Alcotest.test_case "recv while connecting" `Quick test_recv_while_connecting;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition defers then delivers" `Quick test_partition_defers_then_delivers;
          Alcotest.test_case "partition refuses SYN" `Quick test_partition_refuses_syn;
          Alcotest.test_case "latency factor" `Quick test_latency_factor_stretches_delivery;
          Alcotest.test_case "segment loss penalty" `Quick test_drop_penalizes_transfers;
          Alcotest.test_case "peer gone after close" `Quick test_peer_gone_after_close;
          Alcotest.test_case "inject EOF (half-closed restart)" `Quick test_inject_eof_restores_half_closed;
        ] );
      ( "unix",
        [
          Alcotest.test_case "socketpair" `Quick test_unix_socketpair;
          Alcotest.test_case "unix listener" `Quick test_unix_listener;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "lookup" `Quick test_discovery_lookup;
          Alcotest.test_case "subscribe before" `Quick test_discovery_subscribe_before;
          Alcotest.test_case "subscribe after" `Quick test_discovery_subscribe_after;
          Alcotest.test_case "multiple subscribers" `Quick test_discovery_multiple_subscribers;
          Alcotest.test_case "clear" `Quick test_discovery_clear;
          Alcotest.test_case "addr codec" `Quick test_addr_codec;
        ] );
    ]
