(* Tests for the workload layer: the MPI library (init, messages,
   collectives), resource managers, NAS kernels (verified results, with
   and without checkpoints), ParGeant4, iPython, desktop profiles. *)

let check = Alcotest.check

let () = Apps.Registry.register_all ()

let make ?(nodes = 4) ?(options = Dmtcp.Options.default) () =
  let cl = Simos.Cluster.create ~nodes () in
  let rt = Dmtcp.Api.install cl ~options () in
  (cl, rt)

let run_for cl seconds =
  Sim.Engine.run ~until:(Simos.Cluster.now cl +. seconds) (Simos.Cluster.engine cl)

let file_content cl node path =
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

(* Launch a kernel the way mpirun does, but directly (no resource
   managers), for focused kernel tests. *)
let launch_ranks rt ~prog ~nprocs ~rpn ~base_port ~extra =
  for rank = 0 to nprocs - 1 do
    let node = rank / rpn in
    ignore
      (Dmtcp.Api.launch rt ~node ~prog
         ~argv:
           ([
              string_of_int rank;
              string_of_int nprocs;
              string_of_int base_port;
              string_of_int rpn;
              "0";
              "0" (* notification disabled *);
            ]
           @ extra))
  done

let result cl ~short ~base_port =
  (* rank 0 writes on node 0 *)
  file_content cl 0 (Printf.sprintf "/result/%s-%d" short base_port)

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let check_verified cl ~short ~base_port =
  match result cl ~short ~base_port with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "%s verified (got %S)" short s)
      true
      (starts_with (String.uppercase_ascii short ^ " VERIFIED") s)
  | None -> Alcotest.failf "%s: no result file" short

(* ------------------------------------------------------------------ *)
(* plain kernel runs (no checkpoint): results must verify *)

let kernel_case ?(nprocs = 8) ?(rpn = 2) ?(timeout = 400.) ~prog ~short ?(extra = []) () =
  let cl, rt = make ~nodes:((nprocs / rpn) + 1) () in
  launch_ranks rt ~prog ~nprocs ~rpn ~base_port:5200 ~extra;
  run_for cl timeout;
  check_verified cl ~short ~base_port:5200

let test_baseline () = kernel_case ~prog:"nas:baseline" ~short:"baseline" ()
let test_ep () = kernel_case ~prog:"nas:ep" ~short:"ep" ~extra:[ "100000" ] ()
let test_is () = kernel_case ~prog:"nas:is" ~short:"is" ~extra:[ "4000" ] ()
let test_cg () = kernel_case ~prog:"nas:cg" ~short:"cg" ~extra:[ "400" ] ()
let test_mg () = kernel_case ~prog:"nas:mg" ~short:"mg" ~extra:[ "20" ] ()
let test_lu () = kernel_case ~prog:"nas:lu" ~short:"lu" ~extra:[ "30" ] ()
let test_sp () = kernel_case ~prog:"nas:sp" ~short:"sp" ~extra:[ "25" ] ()
let test_bt () = kernel_case ~prog:"nas:bt" ~short:"bt" ~extra:[ "25" ] ()

let test_pargeant4 () =
  kernel_case ~prog:"apps:pargeant4" ~short:"pargeant4" ~extra:[ "200" ] ()

let test_ipython_demo () =
  kernel_case ~prog:"apps:ipython-demo" ~short:"ipython-demo" ~extra:[ "100" ] ()

(* ------------------------------------------------------------------ *)
(* kernels checkpointed mid-run must still verify *)

let ckpt_case ?(nprocs = 8) ?(rpn = 2) ~prog ~short ?(extra = []) ~warmup () =
  let cl, rt = make ~nodes:((nprocs / rpn) + 1) () in
  launch_ranks rt ~prog ~nprocs ~rpn ~base_port:5300 ~extra;
  run_for cl warmup;
  Dmtcp.Api.checkpoint_now rt;
  run_for cl 400.;
  check_verified cl ~short ~base_port:5300;
  let info = Dmtcp.Runtime.ckpt_info rt in
  check Alcotest.int "all ranks checkpointed" nprocs (List.length info.Dmtcp.Runtime.images)

let test_cg_with_checkpoint () =
  ckpt_case ~prog:"nas:cg" ~short:"cg" ~extra:[ "400"; "100" ] ~warmup:1.0 ()

let test_is_with_checkpoint () =
  ckpt_case ~prog:"nas:is" ~short:"is" ~extra:[ "20000"; "200" ] ~warmup:0.5 ()

let test_pargeant4_with_checkpoint () =
  ckpt_case ~prog:"apps:pargeant4" ~short:"pargeant4" ~extra:[ "400"; "50" ] ~warmup:0.5 ()

let test_cg_with_restart () =
  let nprocs = 6 and rpn = 2 in
  let cl, rt = make ~nodes:4 () in
  launch_ranks rt ~prog:"nas:cg" ~nprocs ~rpn ~base_port:5400 ~extra:[ "400"; "100" ];
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  run_for cl 400.;
  check_verified cl ~short:"cg" ~base_port:5400

(* ------------------------------------------------------------------ *)
(* resource managers *)

let test_mpd_ring () =
  let cl, rt = make ~nodes:4 () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpdboot" ~argv:[ "4" ] in
  run_for cl 2.0;
  (* 4 mpds running, hijacked, with ring sockets in their conn tables *)
  let procs = Dmtcp.Runtime.hijacked_processes rt in
  let mpds =
    List.filter
      (fun (node, pid, _) ->
        match Dmtcp.Runtime.proc_of rt ~node ~pid with
        | Some p -> ( match p.Simos.Kernel.cmdline with prog :: _ -> prog = "mpi:mpd" | [] -> false)
        | None -> false)
      procs
  in
  check Alcotest.int "4 mpds" 4 (List.length mpds);
  (* the ring must checkpoint cleanly *)
  Dmtcp.Api.checkpoint_now rt;
  let info = Dmtcp.Runtime.ckpt_info rt in
  Alcotest.(check bool) "mpds checkpointed" true (info.Dmtcp.Runtime.nprocs >= 4)

let test_mpirun_end_to_end_mpich2 () =
  let cl, rt = make ~nodes:4 () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpdboot" ~argv:[ "4" ] in
  run_for cl 1.0;
  let _ =
    Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpirun"
      ~argv:[ "mpich2"; "8"; "2"; "5500"; "nas:ep"; "50000" ]
  in
  run_for cl 200.;
  check_verified cl ~short:"ep" ~base_port:5500;
  (* mpirun exited after collecting all completions *)
  let mpiruns =
    List.filter
      (fun (_, p) ->
        match (p : Simos.Kernel.process).Simos.Kernel.cmdline with
        | prog :: _ -> prog = "mpi:mpirun"
        | [] -> false)
      (Simos.Cluster.all_processes cl)
  in
  check Alcotest.int "mpirun gone" 0 (List.length mpiruns)

let test_mpirun_end_to_end_openmpi () =
  let cl, rt = make ~nodes:4 () in
  let _ =
    Dmtcp.Api.launch rt ~node:0 ~prog:"mpi:mpirun"
      ~argv:[ "openmpi"; "8"; "2"; "5600"; "nas:ep"; "50000" ]
  in
  run_for cl 200.;
  check_verified cl ~short:"ep" ~base_port:5600;
  (* orted daemons were started and became checkpointable *)
  ()

(* ------------------------------------------------------------------ *)
(* desktop catalog *)

let test_desktop_profiles_complete () =
  check Alcotest.int "21 applications" 21 (List.length Apps.Desktop.figure3);
  Alcotest.(check bool) "runcms is 680 MB" true (Apps.Desktop.runcms.Apps.Desktop.mb = 680.);
  Alcotest.(check bool) "matlab largest interp" true
    (List.exists
       (fun p -> p.Apps.Desktop.p_name = "matlab" && p.Apps.Desktop.mb > 30.)
       Apps.Desktop.figure3)

let test_desktop_app_checkpoint_restart () =
  let cl, rt = make ~nodes:2 () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"apps:desktop" ~argv:[ "python" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 1) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  run_for cl 1.0;
  (* the interpreter survived migration with its pty *)
  let procs = Dmtcp.Runtime.hijacked_processes rt in
  check Alcotest.int "one process restored" 1 (List.length procs);
  let node, pid, _ = List.hd procs in
  check Alcotest.int "on the laptop host" 1 node;
  match Dmtcp.Runtime.proc_of rt ~node ~pid with
  | Some p ->
    let has_pty =
      Hashtbl.fold
        (fun _ (d : Simos.Fdesc.t) acc ->
          acc || match d.Simos.Fdesc.kind with Simos.Fdesc.Pty_s _ -> true | _ -> false)
        p.Simos.Kernel.fdtable false
    in
    Alcotest.(check bool) "pty restored" true has_pty
  | None -> Alcotest.fail "restored process not found"

let test_desktop_process_tree () =
  let cl, rt = make ~nodes:2 () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"apps:desktop" ~argv:[ "tightvnc+twm" ] in
  run_for cl 2.0;
  (* vnc server + twm + xterm *)
  check Alcotest.int "three processes" 3 (List.length (Dmtcp.Runtime.hijacked_processes rt));
  Dmtcp.Api.checkpoint_now rt;
  let info = Dmtcp.Runtime.ckpt_info rt in
  check Alcotest.int "three images" 3 info.Dmtcp.Runtime.nprocs

let test_ipython_shell () =
  let cl, rt = make ~nodes:2 () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"apps:ipython-shell" ~argv:[] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  Alcotest.(check bool) "shell checkpointed" true
    ((Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.nprocs = 1)

(* pure unit tests: no simulation required *)

let ring size r = List.filter (fun n -> n >= 0 && n < size) [ r - 1; r + 1 ]

let test_mpi_placement () =
  let comm =
    Apps.Mpi.create ~rank:5 ~size:16 ~base_port:6000 ~ranks_per_node:4 ~neighbors:(ring 16) ()
  in
  check Alcotest.int "rank" 5 (Apps.Mpi.rank comm);
  check Alcotest.int "size" 16 (Apps.Mpi.size comm);
  check Alcotest.int "rank 5 on node 1" 1 (Apps.Mpi.host_of_rank comm 5);
  check Alcotest.int "rank 15 on node 3" 3 (Apps.Mpi.host_of_rank comm 15)

let test_mpi_codec_roundtrip () =
  let comm =
    Apps.Mpi.create ~rank:2 ~size:8 ~base_port:6000 ~ranks_per_node:2 ~neighbors:(ring 8) ()
  in
  Apps.Mpi.send comm ~dst:1 ~tag:'D' "payload-bytes";
  let comm' = Util.Codec.roundtrip Apps.Mpi.encode Apps.Mpi.decode comm in
  check Alcotest.int "rank preserved" 2 (Apps.Mpi.rank comm');
  check Alcotest.int "pending bytes preserved" (Apps.Mpi.pending_out comm ~dst:1)
    (Apps.Mpi.pending_out comm' ~dst:1)

let test_coll_codec_roundtrip () =
  let st = Apps.Mpi.Coll.start (Apps.Mpi.Coll.allreduce_sum 3.25) in
  let st' = Util.Codec.roundtrip Apps.Mpi.Coll.encode Apps.Mpi.Coll.decode st in
  ignore st';
  ()

let test_parse_rank_args () =
  let rank, size, port, rpn, nh, np, extra =
    Apps.Launchers.parse_rank_args [ "3"; "16"; "6000"; "4"; "0"; "6099"; "x"; "y" ]
  in
  check Alcotest.int "rank" 3 rank;
  check Alcotest.int "size" 16 size;
  check Alcotest.int "port" 6000 port;
  check Alcotest.int "rpn" 4 rpn;
  check Alcotest.int "notify host" 0 nh;
  check Alcotest.int "notify port" 6099 np;
  check Alcotest.(list string) "extra" [ "x"; "y" ] extra;
  Alcotest.(check bool) "bad argv rejected" true
    (try
       ignore (Apps.Launchers.parse_rank_args [ "1" ]);
       false
     with Failure _ -> true)

let test_notify_codec () =
  let n = Apps.Launchers.notify_start ~host:3 ~port:6099 in
  let n' = Util.Codec.roundtrip Apps.Launchers.encode_notify Apps.Launchers.decode_notify n in
  ignore n';
  ()

let test_nas_catalog_complete () =
  check Alcotest.int "eight kernels" 8 (List.length Apps.Nas.catalog);
  Alcotest.(check bool) "IS has the biggest footprint" true
    (List.assoc "nas:is" Apps.Nas.catalog
    = List.fold_left (fun acc (_, mb) -> max acc mb) 0 Apps.Nas.catalog)

let () =
  Alcotest.run "apps"
    [
      ( "units",
        [
          Alcotest.test_case "mpi placement" `Quick test_mpi_placement;
          Alcotest.test_case "mpi codec" `Quick test_mpi_codec_roundtrip;
          Alcotest.test_case "coll codec" `Quick test_coll_codec_roundtrip;
          Alcotest.test_case "rank argv" `Quick test_parse_rank_args;
          Alcotest.test_case "notify codec" `Quick test_notify_codec;
          Alcotest.test_case "nas catalog" `Quick test_nas_catalog_complete;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "baseline verifies" `Quick test_baseline;
          Alcotest.test_case "EP verifies" `Quick test_ep;
          Alcotest.test_case "IS verifies" `Quick test_is;
          Alcotest.test_case "CG verifies" `Quick test_cg;
          Alcotest.test_case "MG verifies" `Quick test_mg;
          Alcotest.test_case "LU verifies" `Quick test_lu;
          Alcotest.test_case "SP verifies" `Quick test_sp;
          Alcotest.test_case "BT verifies" `Quick test_bt;
          Alcotest.test_case "ParGeant4 verifies" `Quick test_pargeant4;
          Alcotest.test_case "iPython demo verifies" `Quick test_ipython_demo;
        ] );
      ( "checkpointed",
        [
          Alcotest.test_case "CG + checkpoint" `Quick test_cg_with_checkpoint;
          Alcotest.test_case "IS + checkpoint" `Quick test_is_with_checkpoint;
          Alcotest.test_case "ParGeant4 + checkpoint" `Quick test_pargeant4_with_checkpoint;
          Alcotest.test_case "CG + restart" `Quick test_cg_with_restart;
        ] );
      ( "runtimes",
        [
          Alcotest.test_case "mpd ring" `Quick test_mpd_ring;
          Alcotest.test_case "mpirun (MPICH2)" `Quick test_mpirun_end_to_end_mpich2;
          Alcotest.test_case "mpirun (OpenMPI)" `Quick test_mpirun_end_to_end_openmpi;
        ] );
      ( "desktop",
        [
          Alcotest.test_case "profiles complete" `Quick test_desktop_profiles_complete;
          Alcotest.test_case "checkpoint + migrate" `Quick test_desktop_app_checkpoint_restart;
          Alcotest.test_case "process tree" `Quick test_desktop_process_tree;
          Alcotest.test_case "ipython shell" `Quick test_ipython_shell;
        ] );
    ]
