(* Tests for the MTCP layer: image capture/encode/decode, size
   accounting, thread restore, snapshot isolation, and cost models. *)

let check = Alcotest.check

let () = Chaos.Progs.ensure_registered ()

let make_proc ?(mb = 2) () =
  let cl = Simos.Cluster.create ~nodes:1 () in
  let k = Simos.Cluster.kernel cl 0 in
  let proc =
    Simos.Kernel.spawn k ~prog:"p:memhog"
      ~argv:[ string_of_int mb; "100000"; "/tmp/h" ]
      ()
  in
  Sim.Engine.run ~until:0.5 (Simos.Cluster.engine cl);
  (cl, k, proc)

let test_capture_roundtrip () =
  let _, k, proc = make_proc () in
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  let bytes = Mtcp.Image.encode ~algo:Compress.Algo.Deflate img in
  let img' = Mtcp.Image.decode bytes in
  Alcotest.(check bool) "image round-trips" true (Mtcp.Image.equal img img')

let test_capture_all_algos () =
  let _, k, proc = make_proc () in
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  List.iter
    (fun algo ->
      let bytes = Mtcp.Image.encode ~algo img in
      Alcotest.(check bool) (Compress.Algo.name algo) true
        (Mtcp.Image.equal img (Mtcp.Image.decode bytes)))
    Compress.Algo.all

let test_sizes_accounting () =
  let _, k, proc = make_proc ~mb:4 () in
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  let null = Mtcp.Image.sizes Compress.Algo.Null img in
  let gz = Mtcp.Image.sizes Compress.Algo.Deflate img in
  Alcotest.(check bool) "uncompressed covers the footprint" true
    (null.Mtcp.Image.uncompressed >= 4_000_000);
  check Alcotest.int "raw scheme does not shrink pages"
    null.Mtcp.Image.uncompressed
    (null.Mtcp.Image.compressed + (null.Mtcp.Image.uncompressed - null.Mtcp.Image.compressed));
  Alcotest.(check bool) "deflate shrinks (mostly-zero memhog)" true
    (gz.Mtcp.Image.compressed * 2 < gz.Mtcp.Image.uncompressed);
  check Alcotest.int "zero accounting consistent" gz.Mtcp.Image.zero_bytes
    null.Mtcp.Image.zero_bytes

let test_snapshot_isolation () =
  (* the captured image must not change while the process keeps running *)
  let cl, k, proc = make_proc () in
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  let before = Mtcp.Image.encode ~algo:Compress.Algo.Null img in
  Simos.Kernel.resume_user_threads k proc;
  Sim.Engine.run ~until:(Simos.Cluster.now cl +. 1.0) (Simos.Cluster.engine cl);
  Mem.Address_space.write proc.Simos.Kernel.space
    ~addr:
      (List.hd (Mem.Address_space.regions proc.Simos.Kernel.space)).Mem.Region.start_addr
    "mutated after capture";
  let after = Mtcp.Image.encode ~algo:Compress.Algo.Null img in
  check Alcotest.string "image bytes stable (COW snapshot)" (Digest.string before)
    (Digest.string after)

let test_restore_threads_completes () =
  (* capture a half-done counter, restore into a fresh shell, and the
     restored program must finish with the same answer *)
  let cl = Simos.Cluster.create ~nodes:1 () in
  let k = Simos.Cluster.kernel cl 0 in
  let proc = Simos.Kernel.spawn k ~prog:"p:counter" ~argv:[ "2000"; "/tmp/out" ] () in
  Sim.Engine.run ~until:1.0 (Simos.Cluster.engine cl);
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  Simos.Kernel.vanish_process k proc;
  let shell = Simos.Kernel.create_raw_process k ~pid:(Simos.Kernel.fresh_pid k) ~ppid:0 ~env:[] ~hijacked:false in
  Mtcp.Image.restore_threads k shell img;
  Simos.Cluster.run cl;
  (match Simos.Vfs.lookup (Simos.Kernel.vfs k) "/tmp/out" with
  | Some f -> check Alcotest.string "restored counter finished" "done:2000" (Simos.Vfs.read_all f)
  | None -> Alcotest.fail "no output after restore")

let test_blocked_wait_preserved () =
  (* a thread blocked on a sleep must re-block after restore, not spin *)
  let cl = Simos.Cluster.create ~nodes:1 () in
  let k = Simos.Cluster.kernel cl 0 in
  let proc = Simos.Kernel.spawn k ~prog:"p:aware" ~argv:[ "100.0" ] () in
  Sim.Engine.run ~until:0.5 (Simos.Cluster.engine cl);
  Simos.Kernel.suspend_user_threads k proc;
  let img = Mtcp.Image.capture proc in
  let ti = List.hd img.Mtcp.Image.threads in
  Alcotest.(check bool) "wait condition captured" true (ti.Mtcp.Image.ti_wait <> None)

let test_decode_rejects_corruption () =
  let _, k, proc = make_proc () in
  Simos.Kernel.suspend_user_threads k proc;
  let bytes = Mtcp.Image.encode ~algo:Compress.Algo.Deflate (Mtcp.Image.capture proc) in
  let b = Bytes.of_string bytes in
  Bytes.set b (Bytes.length b / 2) '\xee';
  Alcotest.(check bool) "corrupt image rejected" true
    (try
       ignore (Mtcp.Image.decode (Bytes.to_string b));
       false
     with
    | Compress.Container.Bad_container _ | Util.Codec.Reader.Corrupt _ -> true)

let test_manager_threads_excluded () =
  (* processes under DMTCP have a manager thread; it must not be captured *)
  let cl = Simos.Cluster.create ~nodes:1 () in
  let rt = Dmtcp.Api.install cl () in
  let _ = Dmtcp.Api.launch rt ~node:0 ~prog:"p:counter" ~argv:[ "100000"; "/tmp/x" ] in
  Sim.Engine.run ~until:1.0 (Simos.Cluster.engine cl);
  match Dmtcp.Runtime.hijacked_processes rt with
  | [ (node, pid, _) ] ->
    let k = Simos.Cluster.kernel cl node in
    let proc = Option.get (Simos.Kernel.find_process k ~pid) in
    Simos.Kernel.suspend_user_threads k proc;
    let img = Mtcp.Image.capture proc in
    check Alcotest.int "only the user thread captured" 1 (List.length img.Mtcp.Image.threads);
    Alcotest.(check bool) "process has more threads live" true
      (List.length proc.Simos.Kernel.threads > 1)
  | procs -> Alcotest.failf "expected one process, got %d" (List.length procs)

let test_delta_sizes () =
  let cl, k, proc = make_proc ~mb:4 () in
  Simos.Kernel.suspend_user_threads k proc;
  let img1 = Mtcp.Image.capture proc in
  Simos.Kernel.resume_user_threads k proc;
  Sim.Engine.run ~until:(Simos.Cluster.now cl +. 0.1) (Simos.Cluster.engine cl);
  (* dirty exactly one page *)
  let r = List.hd (Mem.Address_space.regions proc.Simos.Kernel.space) in
  Mem.Address_space.write proc.Simos.Kernel.space ~addr:r.Mem.Region.start_addr "dirty!";
  Simos.Kernel.suspend_user_threads k proc;
  let img2 = Mtcp.Image.capture proc in
  let full = Mtcp.Image.sizes Compress.Algo.Deflate img2 in
  let delta =
    Mtcp.Image.delta_sizes Compress.Algo.Deflate ~prev:(Some img1.Mtcp.Image.space) img2
  in
  (* memhog's pages are mostly zeros, so compare raw page volumes: the
     full image re-writes ~4 MB, the delta only the dirtied page(s) *)
  Alcotest.(check bool)
    (Printf.sprintf "delta pages (%d) far below full (%d)" delta.Mtcp.Image.uncompressed
       full.Mtcp.Image.uncompressed)
    true
    (delta.Mtcp.Image.uncompressed * 10 < full.Mtcp.Image.uncompressed);
  Alcotest.(check bool) "delta covers the dirtied page" true
    (delta.Mtcp.Image.uncompressed
    >= Mem.Page.size + (4096 + 1024) (* one page + image metadata *));
  (* no prev = full *)
  let same = Mtcp.Image.delta_sizes Compress.Algo.Deflate ~prev:None img2 in
  check Alcotest.int "no prev equals full" full.Mtcp.Image.compressed same.Mtcp.Image.compressed

(* Delta-reconstruction battery: whatever pages get dirtied, and however
   deep the chain, a delta applied to its base must reconstruct an image
   byte-identical to the from-scratch full checkpoint taken at the same
   instant.  Each chain step applies onto the PREVIOUS reconstruction,
   so errors would compound — byte equality at every depth proves the
   delta codec is exact, not approximately right. *)
let prop_delta_reconstruction =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"delta chain reconstructs byte-identically"
       QCheck.(pair (int_bound 10_000) (int_range 1 4))
       (fun (seed, depth) ->
         let _, k, proc = make_proc ~mb:2 () in
         let sp = proc.Simos.Kernel.space in
         Simos.Kernel.suspend_user_threads k proc;
         let algo = Compress.Algo.Rle in
         let base = Mtcp.Image.capture proc in
         Mem.Address_space.clear_dirty sp;
         let rng = Util.Rng.create (Int64.of_int (seed + 7)) in
         let regions = Array.of_list (Mem.Address_space.regions sp) in
         let prev = ref base in
         let ok = ref true in
         for _step = 1 to depth do
           (* a random dirty pattern: 0..8 writes at random page offsets,
              possibly none (an empty delta must also round-trip) *)
           let writes = Util.Rng.int rng 9 in
           for _ = 1 to writes do
             let r = Util.Rng.choose rng regions in
             let page = Util.Rng.int rng (Array.length r.Mem.Region.pages) in
             let off = Util.Rng.int rng (Mem.Page.size - 64) in
             let data = Bytes.to_string (Util.Rng.bytes rng (1 + Util.Rng.int rng 63)) in
             Mem.Address_space.write sp
               ~addr:(r.Mem.Region.start_addr + (page * Mem.Page.size) + off)
               data
           done;
           let fresh = Mtcp.Image.capture proc in
           let delta = Mtcp.Image.encode_delta ~algo fresh in
           Mem.Address_space.clear_dirty sp;
           let rebuilt = Mtcp.Image.apply_delta ~base:!prev delta in
           if Mtcp.Image.encode ~algo rebuilt <> Mtcp.Image.encode ~algo fresh then ok := false;
           (* chain: the next delta applies onto this reconstruction *)
           prev := rebuilt
         done;
         !ok))

let test_cost_models_monotone () =
  Alcotest.(check bool) "suspend grows with threads" true
    (Mtcp.Cost.suspend_seconds ~nthreads:16 > Mtcp.Cost.suspend_seconds ~nthreads:1);
  Alcotest.(check bool) "snapshot grows with pages" true
    (Mtcp.Cost.snapshot_seconds ~pages:10_000 > Mtcp.Cost.snapshot_seconds ~pages:10);
  Alcotest.(check bool) "elect grows with fds" true
    (Mtcp.Cost.elect_seconds ~nfds:100 > Mtcp.Cost.elect_seconds ~nfds:1);
  Alcotest.(check bool) "suspend near paper's 25 ms" true
    (let t = Mtcp.Cost.suspend_seconds ~nthreads:2 in
     t > 0.01 && t < 0.05)

let () =
  Alcotest.run "mtcp"
    [
      ( "image",
        [
          Alcotest.test_case "capture round-trip" `Quick test_capture_roundtrip;
          Alcotest.test_case "all algorithms" `Quick test_capture_all_algos;
          Alcotest.test_case "size accounting" `Quick test_sizes_accounting;
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "restore completes" `Quick test_restore_threads_completes;
          Alcotest.test_case "blocked wait preserved" `Quick test_blocked_wait_preserved;
          Alcotest.test_case "corruption rejected" `Quick test_decode_rejects_corruption;
          Alcotest.test_case "manager threads excluded" `Quick test_manager_threads_excluded;
          Alcotest.test_case "incremental delta sizes" `Quick test_delta_sizes;
          prop_delta_reconstruction;
        ] );
      ("cost", [ Alcotest.test_case "models monotone" `Quick test_cost_models_monotone ]);
    ]
