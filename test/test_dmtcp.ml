(* End-to-end tests of the DMTCP stack: launch under dmtcp_checkpoint,
   coordinator barriers, drain/refill, image writing, restart (same host
   and migrated), pipe promotion, fork sharing, pid virtualization, and
   the dmtcpaware API. *)

let check = Alcotest.check

let () = Chaos.Progs.ensure_registered ()

let make ?(nodes = 4) ?(options = Dmtcp.Options.default) () =
  let cl = Simos.Cluster.create ~nodes () in
  let rt = Dmtcp.Api.install cl ~options () in
  (cl, rt)

let file_content cl node path =
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

(* search every node for the file (restarted processes may move) *)
let file_anywhere cl path =
  let rec go node =
    if node >= Simos.Cluster.nodes cl then None
    else
      match file_content cl node path with
      | Some c -> Some c
      | None -> go (node + 1)
  in
  go 0

let run_for cl seconds = Sim.Engine.run ~until:(Simos.Cluster.now cl +. seconds) (Simos.Cluster.engine cl)

(* ------------------------------------------------------------------ *)

let test_launch_registers_with_coordinator () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "5000"; "/tmp/never" ] in
  run_for cl 1.0;
  check Alcotest.int "one process registered" 1 (List.length (Dmtcp.Runtime.hijacked_processes rt))

let test_status_command () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "5000"; "/tmp/never" ] in
  run_for cl 1.0;
  let k0 = Simos.Cluster.kernel cl 0 in
  Dmtcp.Launcher.last_status := None;
  ignore
    (Simos.Kernel.spawn k0 ~prog:"dmtcp:command" ~argv:[ "--status" ]
       ~env:(Dmtcp.Options.to_env Dmtcp.Options.default) ());
  run_for cl 1.0;
  check (Alcotest.option Alcotest.int) "status reports one manager" (Some 1)
    !Dmtcp.Launcher.last_status

let test_checkpoint_completes () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "100000"; "/tmp/never" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let info = Dmtcp.Runtime.ckpt_info rt in
  check Alcotest.int "one image written" 1 (List.length info.Dmtcp.Runtime.images);
  Alcotest.(check bool) "checkpoint took time" true (Dmtcp.Api.last_checkpoint_seconds rt > 0.);
  (* the image file exists on the right node with the declared size *)
  let node, path = List.hd info.Dmtcp.Runtime.images in
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
  | Some f -> Alcotest.(check bool) "image non-empty" true (Simos.Vfs.sim_size f > 0)
  | None -> Alcotest.fail "image file missing"

let test_checkpoint_transparent_to_app () =
  (* the app must finish with the same result despite a mid-run ckpt *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/ck-count" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "counter unaffected" (Some "done:3000")
    (file_content cl 1 "/tmp/ck-count")

let test_stream_pair_survives_checkpoint () =
  (* continuous traffic across nodes; checkpoint in the middle; the
     sequence must still validate: drain/refill lost or duplicated
     nothing *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "4000"; "/tmp/stream" ] in
  run_for cl 0.3;
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client" ~argv:[ "1"; "6000"; "4000" ] in
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "stream intact" (Some "OK 4000")
    (file_content cl 1 "/tmp/stream")

let test_drain_captures_buffered_data () =
  (* after the write barrier, every checkpointed socket must have empty
     kernel buffers; the drained bytes sit in the connection table *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "400000"; "/tmp/s" ] in
  run_for cl 0.3;
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client" ~argv:[ "1"; "6000"; "400000" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  (* some drained data should have been recorded in some image *)
  let info = Dmtcp.Runtime.ckpt_info rt in
  let drained_total =
    List.fold_left
      (fun acc (node, path) ->
        match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
        | None -> acc
        | Some f ->
          let img = Dmtcp.Ckpt_image.decode (Simos.Vfs.read_all f) in
          List.fold_left
            (fun acc (_, _, info) ->
              match info with
              | Dmtcp.Ckpt_image.FSock { drained; _ } -> acc + String.length drained
              | _ -> acc)
            acc img.Dmtcp.Ckpt_image.fds)
      0 info.Dmtcp.Runtime.images
  in
  Alcotest.(check bool) "some bytes were drained into the image" true (drained_total > 0);
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "stream intact" (Some "OK 400000")
    (file_content cl 1 "/tmp/s")

let test_restart_same_host () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/restart-count" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Simos.Cluster.run cl;
  Alcotest.(check bool) "computation gone" true (file_content cl 1 "/tmp/restart-count" = None);
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "finished after restart" (Some "done:3000")
    (file_content cl 1 "/tmp/restart-count")

let test_restart_migrated_to_other_host () =
  (* the paper's laptop use case: checkpoint on one host, restart on
     another *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/mig-count" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 3) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "finished on the new host" (Some "done:3000")
    (file_content cl 3 "/tmp/mig-count")

let test_restart_distributed_stream () =
  (* both ends of a live TCP connection are checkpointed, killed, and
     restarted (still on two different hosts): discovery + reconnect +
     refill must reproduce the byte stream exactly *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "4000"; "/tmp/rs" ] in
  run_for cl 0.3;
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client" ~argv:[ "1"; "6000"; "4000" ] in
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "stream intact after restart" (Some "OK 4000")
    (file_content cl 1 "/tmp/rs")

let test_restart_stream_migrated_together () =
  (* both sides migrate (paper: "supports both sides of a socket
     migrating"): restart everything on node 0 *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "3000"; "/tmp/ms" ] in
  run_for cl 0.3;
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client" ~argv:[ "1"; "6000"; "3000" ] in
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 0) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "stream intact on one laptop" (Some "OK 3000")
    (file_anywhere cl "/tmp/ms")

let test_pipe_promotion () =
  (* pipes become socketpairs under DMTCP; a parent/child pipeline
     checkpoints and restarts correctly *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:pipeline" ~argv:[ "20000"; "/tmp/pipe" ] in
  run_for cl 0.3;
  (* the pipe wrapper must have produced Pair entries, not a raw pipe *)
  let has_pair =
    List.exists
      (fun (_, _, ps) ->
        List.exists
          (fun (_, e) -> e.Dmtcp.Conn_table.kind = Dmtcp.Conn_table.Pair)
          (Dmtcp.Conn_table.entries ps.Dmtcp.Runtime.conns))
      (Dmtcp.Runtime.hijacked_processes rt)
  in
  Alcotest.(check bool) "promoted pipe entries exist" true has_pair;
  Dmtcp.Api.checkpoint_now rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "pipeline result" (Some "OK 20000")
    (file_content cl 1 "/tmp/pipe")

let test_pipeline_restart () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:pipeline" ~argv:[ "20000"; "/tmp/pipe-r" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "pipeline after restart" (Some "OK 20000")
    (file_content cl 1 "/tmp/pipe-r")

let test_forked_checkpoint_faster () =
  let run forked =
    let options = { Dmtcp.Options.default with Dmtcp.Options.forked } in
    let cl, rt = make ~options () in
    let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:memhog" ~argv:[ "64"; "100000"; "/tmp/h" ] in
    run_for cl 2.0;
    Dmtcp.Api.checkpoint_now rt;
    Dmtcp.Api.last_checkpoint_seconds rt
  in
  let plain = run false in
  let forked = run true in
  Alcotest.(check bool)
    (Printf.sprintf "forked (%f) much faster than plain (%f)" forked plain)
    true
    (forked *. 2. < plain)

let test_interval_checkpointing () =
  let options = { Dmtcp.Options.default with Dmtcp.Options.interval = Some 2.0 } in
  let cl, rt = make ~options () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "1000000"; "/tmp/never" ] in
  run_for cl 7.0;
  (* at least two automatic checkpoints should have happened *)
  let stats = Dmtcp.Runtime.stage_stats rt in
  match List.assoc_opt "ckpt/write" stats with
  | Some s -> Alcotest.(check bool) "several interval checkpoints" true (Util.Stats.count s >= 2)
  | None -> Alcotest.fail "no checkpoints recorded"

let test_dmtcpaware_delays_checkpoint () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:aware" ~argv:[ "1.0" ] in
  run_for cl 0.1;
  (* the app holds the critical section for ~1s from t~=0.1 *)
  Dmtcp.Api.checkpoint rt;
  run_for cl 0.3;
  let info = Dmtcp.Runtime.ckpt_info rt in
  Alcotest.(check bool) "checkpoint not finished during critical section" true
    (info.Dmtcp.Runtime.finished <= info.Dmtcp.Runtime.started);
  Dmtcp.Api.await_checkpoint rt;
  Alcotest.(check bool) "checkpoint finished after section ends" true
    (Dmtcp.Api.last_checkpoint_seconds rt > 0.5)

let test_vpid_conflict_refork () =
  (* restore a process, then fork new processes until one would collide
     with the restored vpid; the wrapper must refork transparently *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "2000"; "/tmp/v1" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  (* restart onto node 2: the restored process keeps vpid from node 1's
     pid range *)
  let script = Dmtcp.Restart_script.remap script (fun _ -> 2) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  let restored_vpids =
    List.map (fun (_, _, ps) -> ps.Dmtcp.Runtime.vpid) (Dmtcp.Runtime.hijacked_processes rt)
  in
  (* now run a pipeline (which forks) on node 1 where those pids came
     from; any collision must be resolved *)
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:pipeline" ~argv:[ "500"; "/tmp/v2" ] in
  Simos.Cluster.run cl;
  let vpids = List.map (fun (_, _, ps) -> ps.Dmtcp.Runtime.vpid) (Dmtcp.Runtime.hijacked_processes rt) in
  let module IS = Set.Make (Int) in
  check Alcotest.int "all vpids distinct" (List.length vpids) (IS.cardinal (IS.of_list vpids));
  ignore restored_vpids;
  check (Alcotest.option Alcotest.string) "restored counter finished" (Some "done:2000")
    (file_content cl 2 "/tmp/v1");
  check (Alcotest.option Alcotest.string) "new pipeline finished" (Some "OK 500")
    (file_content cl 1 "/tmp/v2")

let test_stage_stats_recorded () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:memhog" ~argv:[ "16"; "100000"; "/tmp/never" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let stats = Dmtcp.Runtime.stage_stats rt in
  List.iter
    (fun stage ->
      match List.assoc_opt stage stats with
      | Some s -> Alcotest.(check bool) (stage ^ " positive") true (Util.Stats.mean s > 0.)
      | None -> Alcotest.failf "missing stage %s" stage)
    [ "ckpt/suspend"; "ckpt/elect"; "ckpt/drain"; "ckpt/write"; "ckpt/refill" ];
  (* write dominated, as in Table 1 *)
  let mean stage = Util.Stats.mean (List.assoc stage stats) in
  Alcotest.(check bool) "write dominates suspend" true (mean "ckpt/write" > mean "ckpt/suspend")

let test_restart_script_text () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "1000"; "/tmp/x" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  let text = Dmtcp.Restart_script.to_text script in
  Alcotest.(check bool) "script mentions dmtcp_restart" true
    (String.length text > 0
    && List.exists
         (fun l -> String.length l > 4 && String.sub l 0 3 = "ssh")
         (String.split_on_char '\n' text));
  check (Alcotest.option Alcotest.string) "script file written" (Some text)
    (file_content cl 0 "/ckpt/dmtcp_restart_script.sh")

let test_second_checkpoint_after_restart () =
  (* checkpoint -> restart -> checkpoint again -> restart again *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "5000"; "/tmp/gen" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script2 = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script2;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "two generations survived" (Some "done:5000")
    (file_content cl 1 "/tmp/gen")

let base_suites =
    [
      ( "basics",
        [
          Alcotest.test_case "launch registers with coordinator" `Quick test_launch_registers_with_coordinator;
          Alcotest.test_case "status command" `Quick test_status_command;
          Alcotest.test_case "checkpoint completes" `Quick test_checkpoint_completes;
          Alcotest.test_case "transparent to the app" `Quick test_checkpoint_transparent_to_app;
          Alcotest.test_case "stage stats recorded" `Quick test_stage_stats_recorded;
          Alcotest.test_case "restart script text" `Quick test_restart_script_text;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "stream survives checkpoint" `Quick test_stream_pair_survives_checkpoint;
          Alcotest.test_case "drain captures buffered data" `Quick test_drain_captures_buffered_data;
        ] );
      ( "restart",
        [
          Alcotest.test_case "same host" `Quick test_restart_same_host;
          Alcotest.test_case "migrated to another host" `Quick test_restart_migrated_to_other_host;
          Alcotest.test_case "distributed stream" `Quick test_restart_distributed_stream;
          Alcotest.test_case "stream migrated together" `Quick test_restart_stream_migrated_together;
          Alcotest.test_case "second generation" `Quick test_second_checkpoint_after_restart;
        ] );
      ( "features",
        [
          Alcotest.test_case "pipe promotion" `Quick test_pipe_promotion;
          Alcotest.test_case "pipeline restart" `Quick test_pipeline_restart;
          Alcotest.test_case "forked checkpointing faster" `Quick test_forked_checkpoint_faster;
          Alcotest.test_case "interval checkpointing" `Quick test_interval_checkpointing;
          Alcotest.test_case "dmtcpaware delays checkpoint" `Quick test_dmtcpaware_delays_checkpoint;
          Alcotest.test_case "vpid conflict refork" `Quick test_vpid_conflict_refork;
        ] );
    ]

(* additional suites: shared memory, dmtcpaware hooks, on-disk artifact
   robustness *)

let test_shm_checkpoint_restart () =
  (* two processes sharing an mmap segment must still share after a
     restart; the strictly-alternating counter proves writes stay
     mutually visible *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:shm" ~argv:[ "400"; "/tmp/shm-r" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "shm ping/pong completed" (Some "SHM OK 800")
    (file_content cl 1 "/tmp/shm-r")

let test_shm_survives_migration () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:shm" ~argv:[ "400"; "/tmp/shm-m" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 2) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "shm works on the new host" (Some "SHM OK 800")
    (file_content cl 2 "/tmp/shm-m")

let test_image_files_cleanly_decodable () =
  (* the on-disk artifacts are well-formed: every image decodes, the
     connection table file exists, and the image's program names resolve *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:pipeline" ~argv:[ "20000"; "/tmp/pp" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let info = Dmtcp.Runtime.ckpt_info rt in
  check Alcotest.int "two images (parent+child)" 2 (List.length info.Dmtcp.Runtime.images);
  List.iter
    (fun (node, path) ->
      match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
      | None -> Alcotest.failf "missing image %s" path
      | Some f ->
        let img = Dmtcp.Ckpt_image.decode (Simos.Vfs.read_all f) in
        let mtcp = Dmtcp.Ckpt_image.mtcp img in
        Alcotest.(check bool) "has threads" true (List.length mtcp.Mtcp.Image.threads >= 1);
        Alcotest.(check bool) "vpid assigned" true (img.Dmtcp.Ckpt_image.vpid > 0))
    info.Dmtcp.Runtime.images

let test_dmtcpaware_hooks_fire () =
  let pre = ref 0 and post = ref 0 in
  Dmtcp.Dmtcpaware.set_hooks ~prog:"p:counter"
    ~pre_ckpt:(fun () -> incr pre)
    ~post_ckpt:(fun () -> incr post)
    ();
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "100000"; "/tmp/hk" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  check Alcotest.int "pre-checkpoint hook ran" 1 !pre;
  check Alcotest.int "post-checkpoint hook ran" 1 !post;
  (* and again after a restart (hook also covers the restart path) *)
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  check Alcotest.int "post-restart hook ran" 2 !post;
  Dmtcp.Dmtcpaware.set_hooks ~prog:"p:counter" ()

let test_restart_script_roundtrip () =
  let script =
    { Dmtcp.Restart_script.coord_host = 3; coord_port = 7779;
      entries = [ (0, [ "/ckpt/a" ]); (5, [ "/ckpt/b"; "/ckpt/c" ]) ] }
  in
  let script' =
    Util.Codec.roundtrip Dmtcp.Restart_script.encode Dmtcp.Restart_script.decode script
  in
  Alcotest.(check bool) "script round-trips" true (script = script');
  let merged = Dmtcp.Restart_script.remap script (fun _ -> 1) in
  check Alcotest.int "remap merges hosts" 1 (List.length merged.Dmtcp.Restart_script.entries);
  check Alcotest.int "remap moves coordinator" 1 merged.Dmtcp.Restart_script.coord_host

let test_conn_table_roundtrip () =
  let t = Dmtcp.Conn_table.create () in
  let entry fdn role =
    {
      Dmtcp.Conn_table.conn_id =
        Dmtcp.Conn_id.make ~hostid:2 ~pid:77 ~timestamp:1.5 ~seq:fdn;
      role;
      kind = Dmtcp.Conn_table.Tcp;
      desc_id = 1000 + fdn;
      drained = String.make fdn 'x';
      saved_owner = fdn;
      eof = false;
    }
  in
  Dmtcp.Conn_table.add t ~fd:3 (entry 3 Dmtcp.Conn_table.Connector);
  Dmtcp.Conn_table.add t ~fd:4 (entry 4 Dmtcp.Conn_table.Acceptor);
  Dmtcp.Conn_table.add t ~fd:5 (entry 5 Dmtcp.Conn_table.Pair_a);
  let t' = Util.Codec.roundtrip Dmtcp.Conn_table.encode Dmtcp.Conn_table.decode t in
  check Alcotest.int "entries preserved" 3 (List.length (Dmtcp.Conn_table.entries t'));
  (match Dmtcp.Conn_table.find t' ~fd:4 with
  | Some e ->
    Alcotest.(check bool) "role preserved" true (e.Dmtcp.Conn_table.role = Dmtcp.Conn_table.Acceptor);
    check Alcotest.string "drained preserved" "xxxx" e.Dmtcp.Conn_table.drained
  | None -> Alcotest.fail "fd 4 missing");
  (* dup sharing: two fds on one description dedup to one drain target *)
  let shared = entry 6 Dmtcp.Conn_table.Connector in
  Dmtcp.Conn_table.add t ~fd:6 shared;
  Dmtcp.Conn_table.add t ~fd:7 { shared with Dmtcp.Conn_table.drained = "" };
  let uniques = Dmtcp.Conn_table.unique_descs t in
  check Alcotest.int "dup'd description counted once" 4 (List.length uniques)

let extra_suites =
    [
      ( "shared-memory",
        [
          Alcotest.test_case "checkpoint/restart" `Quick test_shm_checkpoint_restart;
          Alcotest.test_case "migration" `Quick test_shm_survives_migration;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "images decode" `Quick test_image_files_cleanly_decodable;
          Alcotest.test_case "restart script codec" `Quick test_restart_script_roundtrip;
          Alcotest.test_case "conn table codec" `Quick test_conn_table_roundtrip;
        ] );
      ( "dmtcpaware",
        [ Alcotest.test_case "hooks fire" `Quick test_dmtcpaware_hooks_fire ] );
    ]



(* failure injection *)

let test_restart_with_missing_image () =
  (* a lost image: the restart process restores what it can and the other
     processes still come back *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/mi-a" ] in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/mi-b" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  (* delete one of the two images *)
  (match script.Dmtcp.Restart_script.entries with
  | [ (host, first :: _) ] ->
    ignore (Simos.Vfs.unlink (Simos.Kernel.vfs (Simos.Cluster.kernel cl host)) first)
  | _ -> Alcotest.fail "unexpected script shape");
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  let a = file_content cl 1 "/tmp/mi-a" and b = file_content cl 1 "/tmp/mi-b" in
  (* exactly one of the two finished *)
  check Alcotest.int "one process survived the lost image" 1
    (List.length (List.filter (fun x -> x = Some "done:3000") [ a; b ]))

let test_checkpoint_excludes_unhijacked () =
  (* a process running outside dmtcp_checkpoint must not be captured *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "100000"; "/tmp/in" ] in
  let k2 = Simos.Cluster.kernel cl 2 in
  ignore (Simos.Kernel.spawn k2 ~prog:"p:counter" ~argv:[ "100000"; "/tmp/out" ] ());
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  check Alcotest.int "only the hijacked process imaged" 1
    (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.nprocs

let test_listener_port_taken_on_restart_host () =
  (* migrating a server onto a host whose port is occupied: the restored
     listener falls back to an ephemeral port instead of failing *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "100000"; "/tmp/pt" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  (* occupy port 6000 on the target host *)
  let k3 = Simos.Cluster.kernel cl 3 in
  let squatter = Simnet.Fabric.socket (Simos.Cluster.fabric cl) ~host:3 in
  ignore (Simnet.Fabric.bind squatter ~port:6000);
  ignore (Simnet.Fabric.listen squatter ~backlog:1);
  ignore k3;
  let script = Dmtcp.Restart_script.remap script (fun _ -> 3) in
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  check Alcotest.int "server restored despite the conflict" 1
    (List.length (Dmtcp.Runtime.hijacked_processes rt))

let test_kill_mid_checkpoint_recovers () =
  (* killing the computation mid-checkpoint must not wedge later runs on
     the same cluster *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:memhog" ~argv:[ "64"; "1000000"; "/tmp/km" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint rt;
  run_for cl 0.05;  (* inside the write stage *)
  Dmtcp.Api.kill_computation rt;
  run_for cl 1.0;
  (* a fresh computation on the same cluster checkpoints normally *)
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/km2" ] in
  run_for cl 1.0;
  Dmtcp.Api.checkpoint_now rt;
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "later computation unaffected" (Some "done:3000")
    (file_content cl 2 "/tmp/km2")

let test_corrupt_image_decode_rejected () =
  (* a bit flip or truncation anywhere in the image must surface as
     [Corrupt_image], never as a garbage decode *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/ci" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let node, path = List.hd (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images in
  let bytes =
    match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
    | Some f -> Simos.Vfs.read_all f
    | None -> Alcotest.fail "image missing"
  in
  ignore (Dmtcp.Ckpt_image.decode bytes);
  let corrupt_at i =
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  let rejects what s =
    match Dmtcp.Ckpt_image.decode s with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Dmtcp.Ckpt_image.Corrupt_image _ -> ()
  in
  rejects "flip in magic" (corrupt_at 0);
  rejects "flip in metadata" (corrupt_at 20);
  rejects "flip in mtcp blob" (corrupt_at (String.length bytes / 2));
  rejects "flip near the end" (corrupt_at (String.length bytes - 2));
  rejects "truncation" (String.sub bytes 0 (String.length bytes - 3));
  rejects "empty" ""

let test_restart_with_corrupt_image_fails_cleanly () =
  (* the restarter must refuse a damaged image set: no half-restored
     computation, no unhandled exception *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:counter" ~argv:[ "3000"; "/tmp/cr" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let node, path = List.hd (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images in
  let vfs = Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path in
  (match vfs with
  | Some f ->
    let bytes = Bytes.of_string (Simos.Vfs.read_all f) in
    let mid = Bytes.length bytes / 2 in
    Bytes.set bytes mid (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x01));
    ignore (Simos.Vfs.unlink (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path);
    Simos.Vfs.append
      (Simos.Vfs.open_or_create (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path)
      (Bytes.to_string bytes)
  | None -> Alcotest.fail "image missing");
  Dmtcp.Api.restart rt script;
  (* the restarter aborts with an error exit — await_restart would never
     complete; just run the cluster and observe the clean failure *)
  run_for cl 2.0;
  check Alcotest.int "nothing restored from the corrupt image" 0
    (List.length (Dmtcp.Runtime.hijacked_processes rt));
  Alcotest.(check bool) "counter did not finish" true (file_content cl 1 "/tmp/cr" = None)

let test_listener_backlog_captured_and_restored () =
  (* the image must carry the server's real listen backlog (p:stream-server
     listens with backlog 4), not a hard-coded default; and the restored
     listener must expose the same value — proven by re-checkpointing the
     restarted process and reading the second image *)
  let backlog_in_image cl rt =
    let node, path =
      List.find
        (fun (node, path) ->
          match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path with
          | Some f ->
            let img = Dmtcp.Ckpt_image.decode (Simos.Vfs.read_all f) in
            List.exists
              (fun (_, _, i) ->
                match i with
                | Dmtcp.Ckpt_image.FSock { state = Dmtcp.Ckpt_image.S_listening _; _ } -> true
                | _ -> false)
              img.Dmtcp.Ckpt_image.fds
          | None -> false)
        (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images
    in
    let img =
      Dmtcp.Ckpt_image.decode
        (Simos.Vfs.read_all
           (Option.get (Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path)))
    in
    List.filter_map
      (fun (_, _, i) ->
        match i with
        | Dmtcp.Ckpt_image.FSock { state = Dmtcp.Ckpt_image.S_listening { backlog; _ }; _ } ->
          Some backlog
        | _ -> None)
      img.Dmtcp.Ckpt_image.fds
    |> List.hd
  in
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server" ~argv:[ "6000"; "100000"; "/tmp/bl" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  check Alcotest.int "image carries the real backlog" 4 (backlog_in_image cl rt);
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  check Alcotest.int "restored listener keeps it" 4 (backlog_in_image cl rt)

let test_reconnect_timeout_exact_deadline () =
  (* a restarted connector whose peer is outside the checkpointed set
     waits for discovery until exactly the 5 s deadline; the old [>]
     comparison plus unclamped polling overshot by at least one period *)
  let cl, rt = make () in
  let k1 = Simos.Cluster.kernel cl 1 in
  (* plain (unhijacked) server: survives kill_computation and is never
     part of the restart set *)
  ignore (Simos.Kernel.spawn k1 ~prog:"p:stream-server" ~argv:[ "6000"; "200000"; "/tmp/ed" ] ());
  run_for cl 0.3;
  let _ = Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client" ~argv:[ "1"; "6000"; "200000" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Runtime.reset_stage_stats rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  let stats = Dmtcp.Runtime.stage_stats rt in
  match List.assoc_opt "restart/reconnect" stats with
  | Some s ->
    let d = Util.Stats.mean s in
    Alcotest.(check bool)
      (Printf.sprintf "gave up exactly at the 5 s deadline (got %.9f)" d)
      true
      (Float.abs (d -. 5.0) < 1e-6)
  | None -> Alcotest.fail "restart/reconnect not recorded"

let failure_suites =
  [
    ( "failure-injection",
      [
        Alcotest.test_case "missing image" `Quick test_restart_with_missing_image;
        Alcotest.test_case "unhijacked excluded" `Quick test_checkpoint_excludes_unhijacked;
        Alcotest.test_case "port taken on restart host" `Quick test_listener_port_taken_on_restart_host;
        Alcotest.test_case "kill mid-checkpoint" `Quick test_kill_mid_checkpoint_recovers;
        Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image_decode_rejected;
        Alcotest.test_case "corrupt image fails restart cleanly" `Quick
          test_restart_with_corrupt_image_fails_cleanly;
        Alcotest.test_case "listen backlog captured/restored" `Quick
          test_listener_backlog_captured_and_restored;
        Alcotest.test_case "reconnect timeout exact deadline" `Quick
          test_reconnect_timeout_exact_deadline;
      ] );
  ]

(* property: whatever the stream length and whenever the checkpoint (and
   optional restart) lands, the receiver sees every byte exactly once and
   in order *)
let prop_stream_integrity_under_checkpoint =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8 ~name:"stream integrity under randomized checkpoint/restart"
       QCheck.(triple (int_range 500 4000) (int_range 1 9) bool)
       (fun (count, warmup_decis, do_restart) ->
         (* clamp: qcheck shrinking can step outside the declared range *)
         let count = max 1000 count in
         let warmup_decis = max 1 (min 9 warmup_decis) in
         let cl, rt = make () in
         let _ =
           Dmtcp.Api.launch rt ~node:1 ~prog:"p:stream-server"
             ~argv:[ "6000"; string_of_int count; "/tmp/prop" ]
         in
         run_for cl 0.3;
         let _ =
           Dmtcp.Api.launch rt ~node:2 ~prog:"p:stream-client"
             ~argv:[ "1"; "6000"; string_of_int count ]
         in
         (* aim the checkpoint inside the transfer window *)
         run_for cl (Float.min (0.05 *. float_of_int warmup_decis)
                       (0.5 *. float_of_int count *. 1e-4));
         if Dmtcp.Runtime.hijacked_processes rt <> [] then begin
           Dmtcp.Api.checkpoint_now rt;
           if do_restart then begin
             let script = Dmtcp.Api.restart_script rt in
             Dmtcp.Api.kill_computation rt;
             Dmtcp.Api.restart rt script;
             Dmtcp.Api.await_restart rt
           end
         end;
         Simos.Cluster.run cl;
         file_content cl 1 "/tmp/prop" = Some (Printf.sprintf "OK %d" count)))

(* signal dispositions and the pending queue survive checkpoint/restart *)
let test_signals_survive_restart () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:sigapp" ~argv:[ "3"; "/tmp/sigr" ] in
  run_for cl 0.3;
  (* deliver one handled signal before the checkpoint; it stays pending *)
  (match Dmtcp.Runtime.hijacked_processes rt with
  | [ (node, pid, _) ] ->
    let k = Simos.Cluster.kernel cl node in
    let p = Option.get (Simos.Kernel.find_process k ~pid) in
    Simos.Kernel.suspend_user_threads k p;
    Simos.Kernel.deliver_signal k p ~signal:10;
    Simos.Kernel.resume_user_threads k p;
    (* also prove SIGTERM is ignored per the app's table *)
    Simos.Kernel.deliver_signal k p ~signal:15;
    Alcotest.(check bool) "TERM ignored before ckpt" true
      (p.Simos.Kernel.pstate = Simos.Kernel.Running)
  | _ -> Alcotest.fail "expected one process");
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  (* the restored process still has the table: TERM remains ignored, and
     two more USR1s complete the count of three *)
  (match Dmtcp.Runtime.hijacked_processes rt with
  | [ (node, pid, _) ] ->
    let k = Simos.Cluster.kernel cl node in
    let p = Option.get (Simos.Kernel.find_process k ~pid) in
    Simos.Kernel.deliver_signal k p ~signal:15;
    Alcotest.(check bool) "TERM still ignored after restart" true
      (p.Simos.Kernel.pstate = Simos.Kernel.Running);
    Simos.Kernel.deliver_signal k p ~signal:10;
    Simos.Kernel.deliver_signal k p ~signal:10
  | _ -> Alcotest.fail "expected one restored process");
  Simos.Cluster.run cl;
  check (Alcotest.option Alcotest.string) "handler count completed" (Some "SIGNALS 3")
    (file_anywhere cl "/tmp/sigr")

(* small-unit coverage of the DMTCP metadata types *)
let test_options_env_roundtrip () =
  let opts =
    {
      Dmtcp.Options.coord_host = 7;
      coord_port = 1234;
      ckpt_dir = "/images";
      algo = Compress.Algo.Rle;
      forked = true;
      incremental = true;
      interval = Some 2.5;
      sync_after = true;
      store = true;
      store_replicas = 3;
      store_quorum = 2;
      keep_generations = 4;
      delta_chain = 5;
      lazy_restart = true;
      restart_parallel = 3;
      compact_depth = 6;
      plugins = [ "ext-sock"; "blacklist-ports" ];
      blacklist_ports = [ 53; 631 ];
      ext_shm_prefix = "/var/db/nscd";
      mpi_proxy_prefix = "/run/mpiproxy";
    }
  in
  let opts' = Dmtcp.Options.of_env (Dmtcp.Options.to_env opts) in
  Alcotest.(check bool) "options survive the environment" true (opts = opts')

let test_upid_conn_id_codecs () =
  let upid = Dmtcp.Upid.make ~hostid:3 ~pid:204 ~generation:2 in
  let upid' = Util.Codec.roundtrip Dmtcp.Upid.encode Dmtcp.Upid.decode upid in
  Alcotest.(check bool) "upid round-trips" true (upid = upid');
  check Alcotest.string "upid string" "3-204-g2" (Dmtcp.Upid.to_string upid);
  Alcotest.(check bool) "generation bumps" true
    ((Dmtcp.Upid.next_generation upid).Dmtcp.Upid.generation = 3);
  let cid = Dmtcp.Conn_id.make ~hostid:1 ~pid:55 ~timestamp:0.125 ~seq:9 in
  let cid' = Util.Codec.roundtrip Dmtcp.Conn_id.encode Dmtcp.Conn_id.decode cid in
  Alcotest.(check bool) "conn id round-trips" true (Dmtcp.Conn_id.equal cid cid');
  Alcotest.(check bool) "keys distinguish connections" true
    (Dmtcp.Conn_id.to_key cid
    <> Dmtcp.Conn_id.to_key (Dmtcp.Conn_id.make ~hostid:1 ~pid:55 ~timestamp:0.125 ~seq:10))

let test_proto_parse () =
  Alcotest.(check bool) "hello" true
    (match Dmtcp.Proto.parse "HELLO 1-2-g0" with Dmtcp.Proto.Hello _ -> true | _ -> false);
  Alcotest.(check bool) "barrier" true (Dmtcp.Proto.parse "BARRIER 3" = Dmtcp.Proto.Barrier 3);
  Alcotest.(check bool) "release" true (Dmtcp.Proto.parse "RELEASE 5" = Dmtcp.Proto.Release 5);
  Alcotest.(check bool) "garbage tolerated" true
    (match Dmtcp.Proto.parse "NONSENSE x y" with Dmtcp.Proto.Unknown _ -> true | _ -> false);
  let lines, rest = Dmtcp.Proto.split_lines "A
B
partial" in
  Alcotest.(check (list string)) "line split" [ "A"; "B" ] lines;
  check Alcotest.string "remainder kept" "partial" rest;
  let frame = Dmtcp.Proto.handshake_frame "key-123" in
  check Alcotest.int "fixed frame width" Dmtcp.Proto.handshake_len (String.length frame);
  check Alcotest.string "frame round-trip" "key-123" (Dmtcp.Proto.parse_handshake frame)

let test_launcher_unknown_program_fails () =
  (* dmtcp_checkpoint of a nonexistent binary exits 127 instead of
     spinning *)
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"no:such-program" ~argv:[] in
  run_for cl 2.0;
  check Alcotest.int "nothing registered" 0 (List.length (Dmtcp.Runtime.hijacked_processes rt));
  (* the launcher process is gone, not spinning *)
  let launchers =
    List.filter
      (fun (_, (p : Simos.Kernel.process)) ->
        match p.Simos.Kernel.cmdline with x :: _ -> x = "dmtcp:checkpoint" | [] -> false)
      (Simos.Cluster.all_processes cl)
  in
  check Alcotest.int "launcher exited" 0 (List.length launchers)

let test_inspect_describe () =
  let cl, rt = make () in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:pipeline" ~argv:[ "20000"; "/tmp/insp" ] in
  run_for cl 0.3;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  let report = Dmtcp.Inspect.describe_checkpoint rt script in
  let contains needle =
    let n = String.length needle and h = String.length report in
    let rec go i = i + n <= h && (String.sub report i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true (contains needle))
    [ "p:pipeline"; "vpid"; "socket"; "pair"; "drained"; "memory:"; "threads (" ]

let unit_suites =
  [
    ( "metadata",
      [
        Alcotest.test_case "options env round-trip" `Quick test_options_env_roundtrip;
        Alcotest.test_case "upid/conn-id codecs" `Quick test_upid_conn_id_codecs;
        Alcotest.test_case "protocol parsing" `Quick test_proto_parse;
        Alcotest.test_case "launcher exec failure" `Quick test_launcher_unknown_program_fails;
        Alcotest.test_case "inspect describes images" `Quick test_inspect_describe;
      ] );
  ]

let property_suites =
  [
    ("signals", [ Alcotest.test_case "survive restart" `Quick test_signals_survive_restart ]);
    ("properties", [ prop_stream_integrity_under_checkpoint ]);
  ]

let () =
  Alcotest.run "dmtcp" (base_suites @ extra_suites @ failure_suites @ unit_suites @ property_suites)
