(* Tier-1 entry point for the chaos harness.

   The default run tortures a fixed 25-seed corpus (a couple of minutes
   of simulated time, a few seconds of wall clock); set CHAOS_SEEDS to
   widen the sweep, e.g.

     CHAOS_SEEDS=200 dune exec test/test_chaos.exe

   The corpus seeds are pinned: every seed is a complete scenario
   (workload + fault schedule + checkpoint times) derived from nothing
   but the seed, so a failure here is replayable verbatim with

     dmtcp_sim torture --replay SEED [--keep I,J]          *)

let () = Chaos.Progs.ensure_registered ()

let seed_count =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 25)
  | None -> 25

(* ------------------------------------------------------------------ *)
(* Scenario generation *)

let test_scenario_deterministic () =
  List.iter
    (fun seed ->
      let a = Chaos.Scenario.describe (Chaos.Scenario.sample ~seed) in
      let b = Chaos.Scenario.describe (Chaos.Scenario.sample ~seed) in
      Alcotest.(check string) (Printf.sprintf "seed %d stable" seed) a b)
    [ 0; 1; 17; 48; 78; 199 ]

let test_scenarios_vary () =
  let descs =
    List.init 50 (fun seed -> Chaos.Scenario.describe (Chaos.Scenario.sample ~seed))
  in
  let distinct = List.sort_uniq compare descs in
  Alcotest.(check bool) "50 seeds yield many distinct scenarios" true
    (List.length distinct > 40)

let test_scenario_well_formed () =
  for seed = 0 to 99 do
    let sc = Chaos.Scenario.sample ~seed in
    Alcotest.(check bool) "has launches" true (sc.Chaos.Scenario.sc_launches <> []);
    Alcotest.(check bool) "has outputs" true (sc.Chaos.Scenario.sc_outputs <> []);
    Alcotest.(check bool) "has a checkpoint" true (sc.Chaos.Scenario.sc_ckpts <> []);
    List.iter
      (fun t ->
        Alcotest.(check bool) "ckpt within deadline" true
          (t > 0. && t < sc.Chaos.Scenario.sc_deadline))
      sc.Chaos.Scenario.sc_ckpts
  done

let test_with_faults_filters () =
  let sc = Chaos.Scenario.sample ~seed:78 in
  let n = List.length sc.Chaos.Scenario.sc_events in
  Alcotest.(check bool) "seed 78 has faults" true (n >= 2);
  let kept = Chaos.Scenario.with_faults sc [ 1 ] in
  Alcotest.(check int) "keep [1] leaves one fault" 1
    (List.length kept.Chaos.Scenario.sc_events);
  let none = Chaos.Scenario.with_faults sc [] in
  Alcotest.(check int) "keep [] leaves none" 0 (List.length none.Chaos.Scenario.sc_events)

(* ------------------------------------------------------------------ *)
(* Shrinker (pure, no simulation involved) *)

let test_shrink_to_single_cause () =
  (* failure iff fault 3 is present: minimizes to exactly [3] *)
  let fails keep = List.mem 3 keep in
  Alcotest.(check (list int)) "single cause" [ 3 ]
    (Chaos.Shrink.minimize ~fails [ 0; 1; 2; 3; 4 ])

let test_shrink_conjunction () =
  (* failure needs both 1 and 4 *)
  let fails keep = List.mem 1 keep && List.mem 4 keep in
  Alcotest.(check (list int)) "pair kept" [ 1; 4 ]
    (Chaos.Shrink.minimize ~fails [ 0; 1; 2; 3; 4 ])

let test_shrink_not_failing () =
  let fails _ = false in
  Alcotest.(check (list int)) "non-failure untouched" [ 0; 1 ]
    (Chaos.Shrink.minimize ~fails [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* The torture corpus *)

let test_corpus () =
  let summary = Chaos.Torture.run_seeds ~base:0 ~count:seed_count () in
  if not (Chaos.Torture.all_pass summary) then
    Alcotest.failf "chaos corpus failed:\n%s" (Chaos.Torture.report summary)

let test_run_exercises_recovery () =
  (* seed 5 is pinned as a scenario whose fault schedule forces at least
     one completed checkpoint and one restart-based recovery; if the
     generator or runner drifts, this canary trips before the corpus *)
  let r = Chaos.Runner.run ~seed:5 () in
  Alcotest.(check (list string)) "passes" [] r.Chaos.Runner.r_violations;
  Alcotest.(check bool) "took a checkpoint" true (r.Chaos.Runner.r_ckpts >= 1);
  Alcotest.(check bool) "recovered from a kill" true (r.Chaos.Runner.r_recoveries >= 1)

let test_run_deterministic () =
  let a = Chaos.Runner.run ~seed:11 () in
  let b = Chaos.Runner.run ~seed:11 () in
  Alcotest.(check string) "same description" a.Chaos.Runner.r_desc b.Chaos.Runner.r_desc;
  Alcotest.(check int) "same ckpts" a.Chaos.Runner.r_ckpts b.Chaos.Runner.r_ckpts;
  Alcotest.(check int) "same recoveries" a.Chaos.Runner.r_recoveries
    b.Chaos.Runner.r_recoveries;
  Alcotest.(check (list string)) "same verdict" a.Chaos.Runner.r_violations
    b.Chaos.Runner.r_violations

(* ------------------------------------------------------------------ *)
(* The harness catches known protocol bugs *)

let with_bug flag f =
  flag := true;
  Fun.protect ~finally:Dmtcp.Faults.reset f

let check_bug_caught ~name flag =
  with_bug flag (fun () ->
      (* seed 0 deterministically trips both known bugs: its mixed
         workload checkpoints mid-stream, so a skipped drain leaves
         bytes in kernel buffers at the write stage and a dropped
         refill corrupts the restarted stream *)
      let summary = Chaos.Torture.run_seeds ~base:0 ~count:1 () in
      match summary.Chaos.Torture.s_failures with
      | [] -> Alcotest.failf "%s not caught by seed 0" name
      | f :: _ ->
        Alcotest.(check bool)
          (name ^ ": shrunk run still names a violation")
          true
          (f.Chaos.Torture.f_min_violations <> []);
        (* the printed reproducer must actually replay *)
        let r =
          Chaos.Runner.run ~keep:f.Chaos.Torture.f_min_keep
            ~seed:f.Chaos.Torture.f_result.Chaos.Runner.r_seed ()
        in
        Alcotest.(check bool) (name ^ ": reproducer replays") false (Chaos.Runner.pass r))

(* store-specific scenarios: replica loss between checkpoint and
   restart (kept out of [Scenario.sample] so the pinned corpus's RNG
   draw order is untouched) *)
let check_store_fault name run =
  match run () with
  | [] -> ()
  | violations -> Alcotest.failf "%s: %s" name (String.concat "; " violations)

let test_store_replica_loss () =
  check_store_fault "replica loss" Chaos.Store_fault.replica_loss

let test_store_total_loss () =
  check_store_fault "total loss" Chaos.Store_fault.total_loss

(* delta-chain scenarios: faults aimed at the incremental/forked fast
   path (same convention — outside [Scenario.sample]) *)
let test_delta_deep_chain () =
  check_store_fault "deep chain" Chaos.Delta_fault.deep_chain

let test_delta_forked_crash () =
  check_store_fault "forked crash" Chaos.Delta_fault.forked_crash

let test_delta_base_loss () =
  check_store_fault "base loss" Chaos.Delta_fault.base_loss

(* restart fast-path scenarios: faults aimed at lazy restore and the
   striped replica fetch (same convention — outside [Scenario.sample]) *)
let test_restore_lazy_kill () =
  check_store_fault "lazy kill" Chaos.Restore_fault.lazy_kill

let test_restore_stripe_drop () =
  check_store_fault "stripe drop" Chaos.Restore_fault.stripe_drop

(* heuristic-plugin scenarios: the paper's open-world heuristics as
   plugins, each through a checkpoint with a kill landing between its
   hook stages (same convention — outside [Scenario.sample]) *)
let test_plugin_blacklist () =
  check_store_fault "blacklist skip" Chaos.Plugin_fault.blacklist_skip

let test_plugin_proc_repoint () =
  check_store_fault "proc repoint" Chaos.Plugin_fault.proc_repoint

let test_plugin_shm_zero () =
  check_store_fault "shm zero" Chaos.Plugin_fault.shm_zero

let test_catches_skip_drain () =
  check_bug_caught ~name:"skip-drain" Dmtcp.Faults.bug_skip_drain

let test_catches_drop_refill () =
  check_bug_caught ~name:"drop-refill" Dmtcp.Faults.bug_drop_refill

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "seeds vary" `Quick test_scenarios_vary;
          Alcotest.test_case "well-formed" `Quick test_scenario_well_formed;
          Alcotest.test_case "with_faults filters" `Quick test_with_faults_filters;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "single cause" `Quick test_shrink_to_single_cause;
          Alcotest.test_case "conjunction" `Quick test_shrink_conjunction;
          Alcotest.test_case "non-failure untouched" `Quick test_shrink_not_failing;
        ] );
      ( "torture",
        [
          Alcotest.test_case "recovery canary (seed 5)" `Quick test_run_exercises_recovery;
          Alcotest.test_case "run deterministic (seed 11)" `Quick test_run_deterministic;
          Alcotest.test_case
            (Printf.sprintf "corpus (%d seeds)" seed_count)
            `Quick test_corpus;
        ] );
      ( "bug-detection",
        [
          Alcotest.test_case "catches skip-drain" `Quick test_catches_skip_drain;
          Alcotest.test_case "catches drop-refill" `Quick test_catches_drop_refill;
        ] );
      ( "store-fault",
        [
          Alcotest.test_case "restart from surviving replica" `Quick test_store_replica_loss;
          Alcotest.test_case "total replica loss fails cleanly" `Quick test_store_total_loss;
        ] );
      ( "delta-fault",
        [
          Alcotest.test_case "depth-3 chain restart is bit-identical" `Quick
            test_delta_deep_chain;
          Alcotest.test_case "node crash mid-forked checkpoint" `Quick test_delta_forked_crash;
          Alcotest.test_case "delta base replica loss fails cleanly" `Quick
            test_delta_base_loss;
        ] );
      ( "restore-fault",
        [
          Alcotest.test_case "node crash mid-lazy-restore" `Quick test_restore_lazy_kill;
          Alcotest.test_case "replica drop mid-striped-fetch" `Quick test_restore_stripe_drop;
        ] );
      ( "plugin-fault",
        [
          Alcotest.test_case "blacklisted port skipped, dead socket back" `Quick
            test_plugin_blacklist;
          Alcotest.test_case "/proc fd re-pointed at restarted pid" `Quick
            test_plugin_proc_repoint;
          Alcotest.test_case "external shm zeroed in image only" `Quick test_plugin_shm_zero;
        ] );
    ]
