(* Tests for the replicated content-addressed checkpoint store: digest
   addressing, cross-generation dedup, quorum write timing, generational
   GC, replica loss, and the image chunker feeding it. *)

let check = Alcotest.check

let mk ?(nodes = 4) ?replicas ?quorum ?keep () =
  let eng = Sim.Engine.create () in
  let targets =
    Array.init nodes (fun i ->
        let t = Storage.Target.local_disk eng () in
        Storage.Target.set_node t i;
        t)
  in
  (eng, Store.create ?replicas ?quorum ?keep ~engine:eng ~targets ())

let put ?base ?(node = 0) ?(lineage = "1-100") ?(generation = 0) ?(name = "img-g0")
    ?(program = "p:test") ?sim_bytes store chunks =
  let sim_bytes =
    match sim_bytes with
    | Some b -> b
    | None -> List.fold_left (fun a c -> a + String.length c) 0 chunks
  in
  Store.put ?base store ~node ~lineage ~generation ~name ~program ~sim_bytes ~chunks

(* ------------------------------------------------------------------ *)

let test_put_fetch_roundtrip () =
  let _, store = mk () in
  let chunks = [ "alpha"; "bb"; String.make 1000 'z' ] in
  let d = put store chunks in
  Alcotest.(check bool) "put books positive time" true (d > 0.);
  Alcotest.(check bool) "catalogued" true (Store.contains store ~name:"img-g0");
  match Store.fetch store ~node:3 ~name:"img-g0" with
  | Some (bytes, delay) ->
    check Alcotest.string "bytes reassemble exactly" (String.concat "" chunks) bytes;
    Alcotest.(check bool) "fetch books positive time" true (delay > 0.)
  | None -> Alcotest.fail "catalogued image not fetchable"

let test_fetch_unknown_is_none () =
  let _, store = mk () in
  Alcotest.(check bool) "unknown name" true (Store.fetch store ~node:0 ~name:"nope" = None);
  Alcotest.(check bool) "not contained" false (Store.contains store ~name:"nope")

let test_dedup_across_generations () =
  let _, store = mk () in
  let a = String.make 500 'a' and b = String.make 600 'b' in
  let c = String.make 700 'c' and d = String.make 800 'd' in
  ignore (put ~generation:0 ~name:"img-g0" store [ a; b; c ]);
  let s0 = Store.stats store in
  check Alcotest.int "gen0 writes every block" 3 s0.Store.blocks_written;
  (* gen1 dirties one block: only [d] ships *)
  ignore (put ~generation:1 ~name:"img-g1" store [ a; b; d ]);
  let s1 = Store.stats store in
  check Alcotest.int "gen1 writes one new block" 4 s1.Store.blocks_written;
  check Alcotest.int "gen1 dedups the unchanged blocks" 2 s1.Store.blocks_deduped;
  check Alcotest.int "target bytes proportional to dirtied data"
    (String.length d)
    (s1.Store.bytes_written - s0.Store.bytes_written);
  check Alcotest.int "dedup avoided re-shipping shared bytes"
    (String.length a + String.length b)
    s1.Store.bytes_deduped;
  (* both generations still reassemble bit-identically *)
  check (Alcotest.option Alcotest.string) "gen0 intact"
    (Some (a ^ b ^ c))
    (Store.peek store ~name:"img-g0");
  check (Alcotest.option Alcotest.string) "gen1 intact"
    (Some (a ^ b ^ d))
    (Store.peek store ~name:"img-g1")

let test_reput_replaces_manifest () =
  let _, store = mk () in
  ignore (put ~name:"img-g0" store [ "one"; "shared" ]);
  ignore (put ~name:"img-g0" store [ "two"; "shared" ]);
  check Alcotest.int "one manifest per name" 1 (List.length (Store.manifests store));
  check (Alcotest.option Alcotest.string) "latest content wins" (Some "twoshared")
    (Store.peek store ~name:"img-g0");
  (* the replaced put's unique block is unreferenced and reclaimed *)
  check Alcotest.int "orphan block reclaimed" 2 (Store.block_count store);
  let s = Store.stats store in
  Alcotest.(check bool) "reclaim accounted" true (s.Store.bytes_reclaimed > 0)

let test_quorum_delay_ordering () =
  let chunks = [ String.make 200_000 'q' ] in
  let sim_bytes = 400_000_000 in
  let d1 =
    let _, store = mk ~replicas:3 ~quorum:1 () in
    put ~sim_bytes store chunks
  in
  let d3 =
    let _, store = mk ~replicas:3 ~quorum:3 () in
    put ~sim_bytes store chunks
  in
  Alcotest.(check bool)
    (Printf.sprintf "quorum 1 durable before quorum 3 (%.3f vs %.3f)" d1 d3)
    true (d1 < d3)

let test_replication_counts () =
  let _, store = mk ~nodes:4 ~replicas:2 () in
  ignore (put store [ "x"; "y" ]);
  let s = Store.stats store in
  check Alcotest.int "one extra copy per new block" 2 s.Store.blocks_replicated;
  List.iter
    (fun chunk ->
      check Alcotest.int
        ("block " ^ chunk ^ " on 2 nodes")
        2
        (Store.replica_count store ~digest:(Store.Digest.of_chunk chunk)))
    [ "x"; "y" ]

(* Regression: checkpoint image sections end in a CRC-32 trailer over
   their own payload, and CRC(m ++ CRC(m)) is a constant residue — so
   every same-length section chunk collides on the CRC component alone.
   Before the digest grew an independent FNV-1a component, dedup would
   splice one process's identity prefix onto another process's image;
   the batch scheduler surfaced this as two restarted jobs claiming the
   same upid. *)
let with_crc_trailer s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Util.Crc32.digest s);
  s ^ Bytes.to_string b

let test_digest_survives_crc_residue () =
  let p1 = with_crc_trailer "process one metadata" in
  let p2 = with_crc_trailer "process two metadata" in
  check Alcotest.int32 "CRC collides by construction (residue property)"
    (Util.Crc32.digest p1) (Util.Crc32.digest p2);
  check Alcotest.int "lengths equal too" (String.length p1) (String.length p2);
  Alcotest.(check bool) "digests still distinct" false
    (Store.Digest.equal (Store.Digest.of_chunk p1) (Store.Digest.of_chunk p2));
  (* the store must keep the two processes' images apart *)
  let _, store = mk () in
  ignore (put ~lineage:"1-100" ~name:"img-a" store [ p1; "tail-a" ]);
  ignore (put ~lineage:"2-200" ~name:"img-b" store [ p2; "tail-b" ]);
  check (Alcotest.option Alcotest.string) "image a intact" (Some (p1 ^ "tail-a"))
    (Store.peek store ~name:"img-a");
  check (Alcotest.option Alcotest.string) "image b intact" (Some (p2 ^ "tail-b"))
    (Store.peek store ~name:"img-b")

(* Regression for preempted jobs: a pin must hold a requeued job's
   newest checkpoint against both generational retention and pid-reuse
   GC until the job restarts. *)
let test_pin_protects_generation () =
  let _, store = mk ~keep:2 () in
  for g = 0 to 4 do
    ignore
      (put ~generation:g
         ~name:(Printf.sprintf "img-g%d" g)
         store
         [ Printf.sprintf "unique-%d" g ])
  done;
  Store.pin store ~lineage:"1-100" ~generation:1;
  check (Alcotest.option Alcotest.int) "pin recorded" (Some 1)
    (Store.pinned store ~lineage:"1-100");
  ignore (Store.gc_lineage store ~lineage:"1-100");
  Alcotest.(check bool) "pinned generation survives keep=2" true
    (Store.contains store ~name:"img-g1");
  Alcotest.(check bool) "generations newer than the pin survive" true
    (Store.contains store ~name:"img-g3");
  Alcotest.(check bool) "generation below the pin is collected" false
    (Store.contains store ~name:"img-g0");
  Store.unpin store ~lineage:"1-100";
  check (Alcotest.option Alcotest.int) "pin gone" None (Store.pinned store ~lineage:"1-100");
  ignore (Store.gc_lineage store ~lineage:"1-100");
  Alcotest.(check bool) "after unpin normal retention applies" false
    (Store.contains store ~name:"img-g1");
  Alcotest.(check bool) "newest two still kept" true (Store.contains store ~name:"img-g4")

(* GC closes the keep-set over [m_base]: a pinned (or retained) delta
   must hold its whole base chain alive, even across the retention
   horizon — collecting the base would orphan every restart from the
   chain. *)
let test_gc_keeps_pinned_delta_chain () =
  let _, store = mk ~keep:1 () in
  ignore (put ~generation:0 ~name:"img-g0" store [ String.make 400 'a' ]);
  ignore (put ~base:"img-g0" ~generation:1 ~name:"img-g1" store [ String.make 90 'd' ]);
  ignore (put ~generation:2 ~name:"img-g2" store [ String.make 500 'e' ]);
  Store.pin store ~lineage:"1-100" ~generation:1;
  ignore (Store.gc_lineage ~keep:1 store ~lineage:"1-100");
  Alcotest.(check bool) "pinned delta survives keep=1" true
    (Store.contains store ~name:"img-g1");
  Alcotest.(check bool) "its base generation survives too" true
    (Store.contains store ~name:"img-g0");
  check Alcotest.(list Alcotest.string) "catalog healthy after gc" [] (Store.verify store);
  (* unpinning releases the whole chain *)
  Store.unpin store ~lineage:"1-100";
  ignore (Store.gc_lineage ~keep:1 store ~lineage:"1-100");
  Alcotest.(check bool) "delta collected after unpin" false
    (Store.contains store ~name:"img-g1");
  Alcotest.(check bool) "base collected after unpin" false
    (Store.contains store ~name:"img-g0");
  Alcotest.(check bool) "newest generation kept" true (Store.contains store ~name:"img-g2")

let test_gc_keeps_retained_delta_chain () =
  (* no pin: the retention window alone must also close over bases *)
  let _, store = mk ~keep:1 () in
  ignore (put ~generation:0 ~name:"img-g0" store [ String.make 400 'a' ]);
  ignore (put ~base:"img-g0" ~generation:1 ~name:"img-g1" store [ String.make 90 'd' ]);
  ignore (Store.gc_lineage ~keep:1 store ~lineage:"1-100");
  Alcotest.(check bool) "retained delta's base survives keep=1" true
    (Store.contains store ~name:"img-g0");
  check Alcotest.(list Alcotest.string) "healthy" [] (Store.verify store)

let test_verify_flags_dangling_base () =
  let _, store = mk () in
  ignore (put ~base:"img-gone" ~generation:1 ~name:"img-g1" store [ "delta-bytes" ]);
  Alcotest.(check bool) "verify names the dangling base" true
    (List.exists
       (fun p ->
         (* the problem line names both the delta and its missing base *)
         let has needle s =
           let nl = String.length needle and sl = String.length s in
           let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
           go 0
         in
         has "img-gone" p && has "img-g1" p)
       (Store.verify store))

let test_gc_retention () =
  let _, store = mk ~keep:2 () in
  let shared = String.make 400 's' in
  for g = 0 to 4 do
    ignore
      (put ~generation:g
         ~name:(Printf.sprintf "img-g%d" g)
         store
         [ shared; Printf.sprintf "unique-%d" g ])
  done;
  check Alcotest.int "five generations catalogued" 5 (List.length (Store.manifests store));
  let r = Store.gc_lineage store ~lineage:"1-100" in
  check Alcotest.int "three manifests dropped" 3 r.Store.gc_manifests;
  check Alcotest.int "their unique blocks freed" 3 r.Store.gc_blocks;
  check Alcotest.int "newest two survive" 2 (List.length (Store.manifests store));
  Alcotest.(check bool) "old gone" false (Store.contains store ~name:"img-g2");
  check (Alcotest.option Alcotest.string) "kept generation intact"
    (Some (shared ^ "unique-4"))
    (Store.peek store ~name:"img-g4");
  check Alcotest.int "shared + 2 unique blocks remain" 3 (Store.block_count store);
  (* keep = 0 disables GC *)
  let _, s2 = mk ~keep:0 () in
  ignore (put ~generation:0 ~name:"a" s2 [ "p" ]);
  ignore (put ~generation:1 ~name:"b" s2 [ "q" ]);
  let r2 = Store.gc s2 in
  check Alcotest.int "keep=0 reclaims nothing" 0 r2.Store.gc_manifests

let test_drop_node_and_replica_fallback () =
  let _, store = mk ~nodes:4 ~replicas:2 () in
  let chunks = [ String.make 300 'm'; String.make 300 'n' ] in
  ignore (put ~node:1 store chunks);
  (* primary's disk dies: reads must come from the surviving replica *)
  Store.drop_node store 1;
  check Alcotest.int "one replica left"
    1
    (Store.replica_count store ~digest:(Store.Digest.of_chunk (List.hd chunks)));
  Alcotest.(check bool) "still available" true (Store.contains store ~name:"img-g0");
  check Alcotest.(list Alcotest.string) "verify clean with a survivor" [] (Store.verify store);
  (match Store.fetch store ~node:1 ~name:"img-g0" with
  | Some (bytes, _) -> check Alcotest.string "bit-identical from replica" (String.concat "" chunks) bytes
  | None -> Alcotest.fail "image lost with a replica surviving");
  (* now the survivor dies too *)
  Store.drop_node store 2;
  Store.drop_node store 0;
  Store.drop_node store 3;
  Alcotest.(check bool) "no longer available" false (Store.contains store ~name:"img-g0");
  Alcotest.(check bool) "verify reports the loss" true (Store.verify store <> []);
  match Store.fetch store ~node:1 ~name:"img-g0" with
  | exception Store.Missing_blocks names ->
    check Alcotest.int "every lost block named" 2 (List.length names)
  | Some _ -> Alcotest.fail "fetch succeeded with every replica gone"
  | None -> Alcotest.fail "fetch must raise, not hide the loss"

let test_placement_skips_dead_nodes () =
  let _, store = mk ~nodes:4 ~replicas:2 () in
  Store.drop_node store 1;
  ignore (put ~node:0 store [ "fresh" ]);
  let d = Store.Digest.of_chunk "fresh" in
  check Alcotest.int "still two replicas" 2 (Store.replica_count store ~digest:d);
  check Alcotest.(list Alcotest.string) "placed on live nodes only" [] (Store.verify store)

(* ------------------------------------------------------------------ *)
(* the chunker feeding the store *)

let image_with_blob blob =
  {
    Dmtcp.Ckpt_image.upid = Dmtcp.Upid.make ~hostid:2 ~pid:41 ~generation:0;
    vpid = 41;
    parent_vpid = 0;
    program = "p:test";
    fds = [];
    ptys = [];
    algo = Compress.Algo.Null;
    sizes = { Mtcp.Image.uncompressed = 1 lsl 20; compressed = 1 lsl 19; zero_bytes = 0 };
    mtcp_blob = blob;
    delta_base = None;
  }

(* pseudo-random, deterministic, and non-periodic over the sizes used
   here (a periodic payload would dedup frame-against-frame and hide
   the cross-generation ratio being measured) *)
let payload n =
  String.init n (fun i ->
      Char.chr ((i * 131 + ((i lsr 8) * 17) + ((i lsr 16) * 211)) land 0xff))

let test_chunk_concat_identity () =
  let data = payload 700_000 in
  let blob = Compress.Container.pack ~algo:Compress.Algo.Null data in
  let bytes = Dmtcp.Ckpt_image.encode (image_with_blob blob) in
  let chunks = Dmtcp.Ckpt_image.chunk bytes in
  check Alcotest.string "concat reproduces the image" bytes (String.concat "" chunks);
  (* 700 KB at 256 KiB frames = 3 frames, plus the image's metadata
     prefix, the container header, and the CRC tail *)
  check Alcotest.int "frame-aligned chunking" 6 (List.length chunks);
  (* unparseable bytes degrade to a single chunk *)
  check Alcotest.int "garbage is one chunk" 1 (List.length (Dmtcp.Ckpt_image.chunk "not an image"))

let test_chunk_stability_under_dirtying () =
  (* dirty one 256 KiB window of the input: only the frame covering it
     (plus the tiny prefix/suffix) may change — that is what makes the
     frames usable dedup units *)
  let n = 8 * 256 * 1024 in
  let data = payload n in
  let dirtied =
    let b = Bytes.of_string data in
    Bytes.fill b (3 * 256 * 1024) 4096 '!';
    Bytes.to_string b
  in
  let chunks_of d =
    Dmtcp.Ckpt_image.chunk
      (Dmtcp.Ckpt_image.encode (image_with_blob (Compress.Container.pack ~algo:Compress.Algo.Null d)))
  in
  let c0 = chunks_of data and c1 = chunks_of dirtied in
  check Alcotest.int "same chunk count" (List.length c0) (List.length c1);
  let differing = List.fold_left2 (fun acc a b -> if a = b then acc else acc + 1) 0 c0 c1 in
  check Alcotest.int "one frame + CRC tail differ" 2 differing

let test_store_dedup_ratio_on_dirty_pages () =
  (* the acceptance scenario, store-level: generation N+1 of a chunked
     image whose input dirtied 1 window out of 16 ships ~1/16 of the
     modeled bytes *)
  let _, store = mk () in
  let n = 16 * 256 * 1024 in
  let gen g =
    let b = Bytes.of_string (payload n) in
    if g > 0 then Bytes.fill b (5 * 256 * 1024) (256 * 1024) (Char.chr (g land 0xff));
    Dmtcp.Ckpt_image.encode
      (image_with_blob (Compress.Container.pack ~algo:Compress.Algo.Null (Bytes.to_string b)))
  in
  let put_gen g =
    let bytes = gen g in
    ignore
      (Store.put store ~node:0 ~lineage:"1-100" ~generation:g
         ~name:(Printf.sprintf "img-g%d" g) ~program:"p:test"
         ~sim_bytes:(String.length bytes) ~chunks:(Dmtcp.Ckpt_image.chunk bytes))
  in
  put_gen 0;
  let s0 = Store.stats store in
  put_gen 1;
  let s1 = Store.stats store in
  let full = s0.Store.bytes_written in
  let delta = s1.Store.bytes_written - s0.Store.bytes_written in
  Alcotest.(check bool)
    (Printf.sprintf "gen1 ships ~1 dirty window of %d full bytes (got %d)" full delta)
    true
    (delta > 0 && delta < full / 8);
  Alcotest.(check bool) "most blocks deduped" true (s1.Store.blocks_deduped >= 15)

(* ------------------------------------------------------------------ *)
(* delta-chain depth and striped fetch *)

let test_chain_depth () =
  let _, store = mk () in
  ignore (put ~name:"base" store [ "aaa" ]);
  ignore (put ~base:"base" ~name:"d1" store [ "bbb" ]);
  ignore (put ~base:"d1" ~name:"d2" store [ "ccc" ]);
  check Alcotest.int "full image depth 0" 0 (Store.chain_depth store ~name:"base");
  check Alcotest.int "first delta depth 1" 1 (Store.chain_depth store ~name:"d1");
  check Alcotest.int "second delta depth 2" 2 (Store.chain_depth store ~name:"d2");
  check Alcotest.int "unknown name depth 0" 0 (Store.chain_depth store ~name:"nope")

let test_striped_fetch_speedup () =
  (* eight equal blocks, read back from the writer's node: with two
     replicas the stripe splits the reads across both disks, so the
     modeled fetch delay must drop well below the single-replica case *)
  let chunks = List.init 8 (fun i -> String.make 100_000 (Char.chr (Char.code 'a' + i))) in
  let fetch_delay replicas =
    let eng, store = mk ~replicas () in
    ignore (put store chunks);
    (* drain the put's write bookings so the fetch measures reads only *)
    Sim.Engine.run ~until:10.0 eng;
    match Store.fetch store ~node:0 ~name:"img-g0" with
    | Some (bytes, delay) ->
      check Alcotest.string "bytes reassemble exactly" (String.concat "" chunks) bytes;
      delay
    | None -> Alcotest.fail "catalogued image not fetchable"
  in
  let single = fetch_delay 1 in
  let striped = fetch_delay 2 in
  Alcotest.(check bool)
    (Printf.sprintf "two replicas at least 1.5x faster (%.4f vs %.4f)" striped single)
    true
    (striped <= single /. 1.5)

(* ------------------------------------------------------------------ *)
(* end-to-end through the DMTCP stack *)

let setup_cluster () =
  Chaos.Progs.ensure_registered ();
  Apps.Registry.register_all ();
  let cl = Simos.Cluster.create ~nodes:4 () in
  let options =
    {
      Dmtcp.Options.default with
      Dmtcp.Options.store = true;
      store_replicas = 2;
      keep_generations = 2;
    }
  in
  let rt = Dmtcp.Api.install cl ~options () in
  (cl, rt)

let run_for cl s = Sim.Engine.run ~until:(Simos.Cluster.now cl +. s) (Simos.Cluster.engine cl)

let test_e2e_checkpoint_lands_in_store () =
  let cl, rt = setup_cluster () in
  let store = Option.get (Dmtcp.Runtime.store rt) in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:memhog" ~argv:[ "8"; "4000"; "/tmp/st1" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let s = Store.stats store in
  Alcotest.(check bool) "blocks written" true (s.Store.blocks_written > 0);
  check Alcotest.int "one image catalogued" 1 (List.length (Store.manifests store));
  let node, path = List.hd (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images in
  (* store mode: the catalog replaces the flat image file *)
  Alcotest.(check bool) "no flat image file" false
    (Simos.Vfs.exists (Simos.Kernel.vfs (Simos.Cluster.kernel cl node)) path);
  Alcotest.(check bool) "catalog resolves the script path" true
    (Store.contains store ~name:(Filename.basename path));
  check Alcotest.(list Alcotest.string) "replication healthy" [] (Store.verify store)

let test_e2e_interval_checkpoints_dedup () =
  let cl, rt = setup_cluster () in
  let store = Option.get (Dmtcp.Runtime.store rt) in
  (* the dirty-page workload: 24 pages (1.5 MB) of real data spanning
     several DMZ2 frames, 2 pages rewritten per iteration — the second
     checkpoint re-ships only the frames covering the dirtied pages *)
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:dirty" ~argv:[ "24"; "2"; "20000"; "/tmp/st2" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let s1 = Store.stats store in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let s2 = Store.stats store in
  let deduped = s2.Store.blocks_deduped - s1.Store.blocks_deduped in
  let written = s2.Store.blocks_written - s1.Store.blocks_written in
  Alcotest.(check bool)
    (Printf.sprintf "second checkpoint mostly dedups (%d deduped, %d written)" deduped written)
    true
    (deduped > written && deduped > 0);
  let shipped = s2.Store.bytes_written - s1.Store.bytes_written in
  Alcotest.(check bool)
    (Printf.sprintf "gen N+1 target bytes proportional to the dirtied pages (%d of %d)" shipped
       s1.Store.bytes_written)
    true
    (shipped < s1.Store.bytes_written / 2);
  check Alcotest.int "catalog still one manifest per live image" 1
    (List.length (Store.manifests store))

let test_e2e_restart_from_replica () =
  let cl, rt = setup_cluster () in
  let store = Option.get (Dmtcp.Runtime.store rt) in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:memhog" ~argv:[ "8"; "400"; "/tmp/st3" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  (* the image bytes the catalog would serve, before the disk loss *)
  let name =
    Filename.basename (snd (List.hd (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images))
  in
  let before = Option.get (Store.peek store ~name) in
  Store.drop_node store 1;
  check (Alcotest.option Alcotest.string) "replica serves identical bytes" (Some before)
    (Store.peek store ~name);
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl 1)) "/tmp/st3"
  with
  | Some f -> check Alcotest.string "computation finished correctly" "hog:400" (Simos.Vfs.read_all f)
  | None -> Alcotest.fail "restarted computation produced no output"

let test_e2e_compaction_pinned_restart () =
  (* pin x compaction: build a depth-3 delta chain through incremental
     checkpoints, pin the lineage (as the scheduler does for preempted
     jobs), let the compactor squash the chain — the pinned lineage
     must stay restartable through the SAME catalog name and finish
     bit-identical to an unfaulted run *)
  Chaos.Progs.ensure_registered ();
  let cl = Simos.Cluster.create ~nodes:4 () in
  let options =
    {
      Dmtcp.Options.default with
      Dmtcp.Options.store = true;
      store_replicas = 2;
      keep_generations = 2;
      incremental = true;
    }
  in
  let rt = Dmtcp.Api.install cl ~options () in
  let store = Option.get (Dmtcp.Runtime.store rt) in
  let _ = Dmtcp.Api.launch rt ~node:1 ~prog:"p:dirty" ~argv:[ "24"; "2"; "1000"; "/tmp/cp1" ] in
  run_for cl 0.5;
  Dmtcp.Api.checkpoint_now rt;
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  run_for cl 0.2;
  Dmtcp.Api.checkpoint_now rt;
  let script = Dmtcp.Api.restart_script rt in
  Dmtcp.Api.kill_computation rt;
  let name =
    Filename.basename (snd (List.hd (Dmtcp.Runtime.ckpt_info rt).Dmtcp.Runtime.images))
  in
  check Alcotest.int "three incremental checkpoints chained" 3 (Store.chain_depth store ~name);
  let m = Option.get (Store.find store ~name) in
  Store.pin store ~lineage:m.Store.m_lineage ~generation:m.Store.m_generation;
  let compacted = Dmtcp.Compactor.run ~max:10 store ~node:0 ~depth:1 in
  Alcotest.(check bool) "compactor squashed the over-deep chains" true
    (List.mem name compacted);
  check Alcotest.int "newest image now a full frame" 0 (Store.chain_depth store ~name);
  let m' = Option.get (Store.find store ~name) in
  Alcotest.(check bool) "manifest marked compacted" true m'.Store.m_compacted;
  Alcotest.(check bool) "consolidated image is self-contained" true
    ((Dmtcp.Ckpt_image.decode (Option.get (Store.peek store ~name))).Dmtcp.Ckpt_image.delta_base
    = None);
  check Alcotest.(list Alcotest.string) "catalog healthy after compaction" [] (Store.verify store);
  Alcotest.(check bool) "pinned generation survived the compactor's gc" true
    (Store.contains store ~name);
  Dmtcp.Api.restart rt script;
  Dmtcp.Api.await_restart rt;
  Simos.Cluster.run cl;
  match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl 1)) "/tmp/cp1" with
  | Some f ->
    check Alcotest.string "computation finished correctly" "dirty:1000" (Simos.Vfs.read_all f)
  | None -> Alcotest.fail "restart after compaction produced no output"

let () =
  Alcotest.run "store"
    [
      ( "core",
        [
          Alcotest.test_case "put/fetch roundtrip" `Quick test_put_fetch_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_fetch_unknown_is_none;
          Alcotest.test_case "dedup across generations" `Quick test_dedup_across_generations;
          Alcotest.test_case "re-put replaces" `Quick test_reput_replaces_manifest;
          Alcotest.test_case "quorum delay ordering" `Quick test_quorum_delay_ordering;
          Alcotest.test_case "replication counts" `Quick test_replication_counts;
          Alcotest.test_case "CRC-residue chunks stay distinct" `Quick
            test_digest_survives_crc_residue;
        ] );
      ( "gc",
        [
          Alcotest.test_case "generational retention" `Quick test_gc_retention;
          Alcotest.test_case "pinned delta chain survives gc" `Quick
            test_gc_keeps_pinned_delta_chain;
          Alcotest.test_case "retained delta chain survives gc" `Quick
            test_gc_keeps_retained_delta_chain;
          Alcotest.test_case "verify flags dangling base" `Quick test_verify_flags_dangling_base;
          Alcotest.test_case "pin protects requeued job's checkpoint" `Quick
            test_pin_protects_generation;
        ] );
      ( "replica-loss",
        [
          Alcotest.test_case "fallback + missing blocks" `Quick test_drop_node_and_replica_fallback;
          Alcotest.test_case "placement skips dead nodes" `Quick test_placement_skips_dead_nodes;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "chain depth" `Quick test_chain_depth;
          Alcotest.test_case "striped fetch speedup" `Quick test_striped_fetch_speedup;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "concat identity" `Quick test_chunk_concat_identity;
          Alcotest.test_case "frame stability" `Quick test_chunk_stability_under_dirtying;
          Alcotest.test_case "dedup ratio on dirty pages" `Quick test_store_dedup_ratio_on_dirty_pages;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "checkpoint lands in store" `Quick test_e2e_checkpoint_lands_in_store;
          Alcotest.test_case "interval dedup" `Quick test_e2e_interval_checkpoints_dedup;
          Alcotest.test_case "restart from replica" `Quick test_e2e_restart_from_replica;
          Alcotest.test_case "compaction keeps pinned lineage restartable" `Quick
            test_e2e_compaction_pinned_restart;
        ] );
    ]
