(* Tests for the discrete-event engine: ordering, cancellation, time
   limits, determinism of simultaneous events. *)

let check = Alcotest.check

let test_empty_run () =
  let e = Sim.Engine.create () in
  Sim.Engine.run e;
  check (Alcotest.float 0.) "clock stays at 0" 0. (Sim.Engine.now e)

let test_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let at delay tag = ignore (Sim.Engine.schedule e ~delay (fun () -> log := tag :: !log)) in
  at 3.0 "c";
  at 1.0 "a";
  at 2.0 "b";
  Sim.Engine.run e;
  check Alcotest.(list string) "fires in time order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 1e-12) "clock at last event" 3.0 (Sim.Engine.now e)

let test_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "FIFO among simultaneous events" (List.init 10 Fun.id) (List.rev !log)

let test_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run e;
  check Alcotest.bool "cancelled event does not fire" false !fired

let test_cancel_twice_ok () =
  let e = Sim.Engine.create () in
  let h = Sim.Engine.schedule e ~delay:1.0 ignore in
  Sim.Engine.cancel h;
  Sim.Engine.cancel h;
  Sim.Engine.run e

let test_nested_scheduling () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore (Sim.Engine.schedule e ~delay:0.5 (fun () -> times := Sim.Engine.now e :: !times))));
  Sim.Engine.run e;
  check Alcotest.(list (float 1e-12)) "nested event at 1.5" [ 1.0; 1.5 ] (List.rev !times)

let test_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  Sim.Engine.run ~until:2.0 e;
  check Alcotest.int "only the first fired" 1 !fired;
  check (Alcotest.float 1e-12) "clock advanced to limit" 2.0 (Sim.Engine.now e);
  Sim.Engine.run e;
  check Alcotest.int "second fires later" 2 !fired;
  check (Alcotest.float 1e-12) "clock at 5" 5.0 (Sim.Engine.now e)

let test_advance_without_events () =
  let e = Sim.Engine.create () in
  Sim.Engine.advance e ~delay:7.5;
  check (Alcotest.float 1e-12) "advance moves the clock" 7.5 (Sim.Engine.now e)

let test_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Sim.Engine.schedule e ~delay:(-1.0) ignore))

let test_schedule_in_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 ignore);
  Sim.Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Sim.Engine.schedule_at e ~time:0.5 ignore))

let test_step () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> incr n));
  ignore (Sim.Engine.schedule e ~delay:2.0 (fun () -> incr n));
  check Alcotest.bool "step fires one" true (Sim.Engine.step e);
  check Alcotest.int "one fired" 1 !n;
  check Alcotest.bool "step fires another" true (Sim.Engine.step e);
  check Alcotest.bool "queue empty" false (Sim.Engine.step e)

(* Cancellation under stress: the scheduler leans hard on cancel (it
   re-arms per-job checkpoint timers on every preempt/drain/restart), so
   cancel must compose with firing order, same-instant FIFO, and
   handlers that cancel their contemporaries. *)

let test_cancel_then_fire_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let at delay tag = Sim.Engine.schedule e ~delay (fun () -> log := tag :: !log) in
  let _a = at 1.0 "a" in
  let b = at 1.0 "b" in
  let _c = at 1.0 "c" in
  let d = at 2.0 "d" in
  let _e' = at 3.0 "e" in
  Sim.Engine.cancel b;
  Sim.Engine.cancel d;
  Sim.Engine.run e;
  check
    Alcotest.(list string)
    "survivors fire in original order" [ "a"; "c"; "e" ] (List.rev !log);
  check (Alcotest.float 1e-12) "clock at last surviving event" 3.0 (Sim.Engine.now e)

let test_cancel_from_handler () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let fired = ref [] in
  (* later same-instant sibling and a future event, both cancelled by the
     first event's handler while already in the heap *)
  let sibling = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := "sibling" :: !fired) in
  let future = Sim.Engine.schedule e ~delay:2.0 (fun () -> fired := "future" :: !fired) in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         log := "killer" :: !log;
         Sim.Engine.cancel sibling;
         Sim.Engine.cancel future));
  (* NB the killer was scheduled after the sibling, so FIFO puts the
     sibling first at t=1 — a same-instant cancel only suppresses events
     that have not yet dispatched *)
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := "tail" :: !fired));
  Sim.Engine.run e;
  check
    Alcotest.(list string)
    "pre-dispatch sibling fires, later ones do not" [ "sibling"; "tail" ] (List.rev !fired)

let test_double_cancel_interleaved () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  let hs = Array.init 8 (fun _ -> Sim.Engine.schedule e ~delay:1.0 (fun () -> incr n)) in
  Array.iter Sim.Engine.cancel hs;
  Array.iter Sim.Engine.cancel hs;
  (* cancelling an already-fired handle must also be a no-op *)
  let h = Sim.Engine.schedule e ~delay:2.0 (fun () -> incr n) in
  Sim.Engine.run e;
  Sim.Engine.cancel h;
  Sim.Engine.cancel h;
  check Alcotest.int "only the live event fired, once" 1 !n;
  check Alcotest.bool "queue drained" false (Sim.Engine.step e)

(* Property: an arbitrary interleaving of schedules and cancels fires
   exactly the surviving events, in nondecreasing time order with FIFO
   ties, and leaves the queue drained (heap invariants hold throughout). *)
let prop_interleaved_cancels =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"engine survives interleaved cancels"
       QCheck.(list (pair (float_bound_exclusive 100.) bool))
       (fun plan ->
         let e = Sim.Engine.create () in
         let fired = ref [] in
         let handles =
           List.mapi
             (fun i (delay, _) ->
               Sim.Engine.schedule e ~delay (fun () -> fired := (delay, i) :: !fired))
             plan
         in
         (* cancel the marked half, interleaved with fresh scheduling *)
         List.iteri
           (fun i ((_, kill), h) ->
             if kill then Sim.Engine.cancel h;
             if i mod 3 = 0 then
               ignore (Sim.Engine.schedule e ~delay:200. ignore))
           (List.combine plan handles);
         Sim.Engine.run e;
         let got = List.rev !fired in
         let survivors =
           List.mapi (fun i (d, kill) -> ((d, i), kill)) plan
           |> List.filter_map (fun (x, kill) -> if kill then None else Some x)
         in
         (* exactly the survivors, dispatched in (time, schedule-order)
            order: one equality asserts set, multiplicity AND ordering *)
         got = List.sort compare survivors))

(* Heap property test: popping returns priorities in nondecreasing order. *)
let prop_heap_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"heap pops sorted"
       QCheck.(list (float_bound_exclusive 1000.))
       (fun priorities ->
         let h = Sim.Heap.create () in
         List.iteri (fun i p -> Sim.Heap.push h ~priority:p i) priorities;
         let rec drain acc =
           match Sim.Heap.pop h with
           | None -> List.rev acc
           | Some (p, _) -> drain (p :: acc)
         in
         let popped = drain [] in
         popped = List.sort compare priorities))

let prop_heap_fifo_ties =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"heap preserves FIFO among ties"
       QCheck.(int_bound 50)
       (fun n ->
         let h = Sim.Heap.create () in
         for i = 0 to n do
           Sim.Heap.push h ~priority:1.0 i
         done;
         let rec drain acc =
           match Sim.Heap.pop h with
           | None -> List.rev acc
           | Some (_, v) -> drain (v :: acc)
         in
         drain [] = List.init (n + 1) Fun.id))

(* Wheel-vs-heap equivalence: the timer wheel is a drop-in ordering
   replacement for the heap in the engine, so for the same pushes both
   must pop the identical (time, value) sequence — including FIFO among
   ties and entries beyond the wheel's ~10 s horizon (the overflow far
   heap and its migration onto the wheel). *)
let prop_wheel_matches_heap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"wheel pops exactly like the heap"
       (* quantized to 10 ms so ties are common; up to 30 s so a third of
          the entries start life in the overflow heap *)
       QCheck.(list (int_bound 3000))
       (fun ticks ->
         let times = List.map (fun k -> float_of_int k *. 0.01) ticks in
         let h = Sim.Heap.create () in
         let w = Sim.Wheel.create () in
         List.iteri
           (fun i t ->
             Sim.Heap.push h ~priority:t i;
             Sim.Wheel.push w ~time:t i)
           times;
         let rec drain pop acc =
           match pop () with None -> List.rev acc | Some tv -> drain pop (tv :: acc)
         in
         drain (fun () -> Sim.Heap.pop h) [] = drain (fun () -> Sim.Wheel.pop w) []))

let test_wheel_interleaved_with_heap () =
  (* pop part-way, then keep pushing at or after the cursor (the wheel's
     contract): the two structures must stay in lock-step *)
  let h = Sim.Heap.create () in
  let w = Sim.Wheel.create () in
  let push t v =
    Sim.Heap.push h ~priority:t v;
    Sim.Wheel.push w ~time:t v
  in
  let pop_both tag =
    let a = Sim.Heap.pop h and b = Sim.Wheel.pop w in
    check
      Alcotest.(option (pair (float 1e-12) int))
      tag a b;
    a
  in
  List.iter (fun (t, v) -> push t v) [ (0.2, 0); (0.1, 1); (15.0, 2); (0.1, 3); (25.0, 4) ];
  ignore (pop_both "first tie, FIFO");
  ignore (pop_both "second tie");
  (* cursor now at 0.1: new pushes land ahead of it, some past the
     horizon relative to the cursor *)
  List.iter (fun (t, v) -> push t v) [ (0.3, 5); (15.0, 6); (40.0, 7) ];
  let rec drain n = if n > 0 then begin ignore (pop_both "drain"); drain (n - 1) end in
  drain 6;
  check Alcotest.(option (pair (float 1e-12) int)) "both empty" None (pop_both "empty")

let wheel_entry = Alcotest.(option (pair (float 1e-12) int))

let test_wheel_horizon_migration () =
  (* the exact horizon boundary: an entry at bucket [cur + nslots] is
     the FIRST one outside the wheel, so it must start life in the
     overflow heap — and once the cursor advances it migrates onto slot
     [nslots mod nslots = 0], i.e. slot 0 of the next rotation.  Ties
     that straddle the migration (one entry migrated from overflow, one
     pushed straight onto the wheel) must still pop in push order. *)
  let w = Sim.Wheel.create ~width:1.0 ~nslots:4 () in
  Sim.Wheel.push w ~time:4.0 100;  (* bucket 4 = cur(0) + nslots: overflow *)
  Sim.Wheel.push w ~time:3.9 101;  (* bucket 3: last slot inside the horizon *)
  Sim.Wheel.push w ~time:0.5 102;
  check wheel_entry "peek sees past the overflow entry" (Some (0.5, 102)) (Sim.Wheel.peek w);
  check wheel_entry "in-wheel minimum first" (Some (0.5, 102)) (Sim.Wheel.pop w);
  (* cursor still at bucket 0, so an equal-time push also overflows *)
  Sim.Wheel.push w ~time:4.0 103;
  check wheel_entry "last in-horizon slot" (Some (3.9, 101)) (Sim.Wheel.pop w);
  (* cursor now at bucket 3: bucket 4 is inside [3, 7), so this push
     lands directly on slot 0 of the next rotation, where the two
     overflow entries are about to migrate *)
  Sim.Wheel.push w ~time:4.0 104;
  check wheel_entry "migrated entry keeps FIFO rank" (Some (4.0, 100)) (Sim.Wheel.pop w);
  check wheel_entry "second overflow tie" (Some (4.0, 103)) (Sim.Wheel.pop w);
  check wheel_entry "direct push pops last" (Some (4.0, 104)) (Sim.Wheel.pop w);
  check wheel_entry "drained" None (Sim.Wheel.pop w)

let test_wheel_overflow_cursor_jump () =
  (* only overflow entries remain: pop must jump the cursor straight to
     their bucket (several rotations out), migrate them, and still serve
     equal-time entries FIFO alongside a post-jump push *)
  let w = Sim.Wheel.create ~width:1.0 ~nslots:4 () in
  Sim.Wheel.push w ~time:8.0 1;  (* bucket 8: two full rotations out *)
  Sim.Wheel.push w ~time:8.0 2;
  check wheel_entry "peek with an empty wheel reads overflow" (Some (8.0, 1)) (Sim.Wheel.peek w);
  check wheel_entry "cursor jumps to the overflow bucket" (Some (8.0, 1)) (Sim.Wheel.pop w);
  Sim.Wheel.push w ~time:8.0 3;  (* now in-horizon: same bucket, same slot *)
  check wheel_entry "migrated tie first" (Some (8.0, 2)) (Sim.Wheel.pop w);
  check wheel_entry "post-jump push last" (Some (8.0, 3)) (Sim.Wheel.pop w);
  check wheel_entry "drained" None (Sim.Wheel.pop w)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel twice" `Quick test_cancel_twice_ok;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "advance without events" `Quick test_advance_without_events;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "schedule in past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "cancel-then-fire ordering" `Quick test_cancel_then_fire_ordering;
          Alcotest.test_case "cancel from handler" `Quick test_cancel_from_handler;
          Alcotest.test_case "double cancel interleaved" `Quick test_double_cancel_interleaved;
          prop_interleaved_cancels;
        ] );
      ("heap", [ prop_heap_sorted; prop_heap_fifo_ties ]);
      ( "wheel",
        [
          prop_wheel_matches_heap;
          Alcotest.test_case "interleaved pop/push matches heap" `Quick
            test_wheel_interleaved_with_heap;
          Alcotest.test_case "horizon-boundary migration" `Quick test_wheel_horizon_migration;
          Alcotest.test_case "overflow-only cursor jump" `Quick test_wheel_overflow_cursor_jump;
        ] );
    ]
