(* Tests for the storage models: local disk with page cache, SAN with a
   shared cursor, NFS layering, dirty tracking and sync. *)

let check = Alcotest.check

let engine () = Sim.Engine.create ()

let test_disk_rate () =
  let eng = engine () in
  (* tiny cache so writes hit the raw device *)
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cache_bytes:0 () in
  let t = Storage.Target.write d ~bytes:100_000_000 in
  check (Alcotest.float 1e-6) "100 MB at 100 MB/s = 1 s" 1.0 t

let test_cache_absorbs_writes () =
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cached_rate:400e6 ~cache_bytes:1_000_000_000 () in
  let cached = Storage.Target.write d ~bytes:100_000_000 in
  Alcotest.(check bool) "cached write ~4x faster than raw" true (cached < 0.3)

let test_cache_fills_up () =
  let eng = engine () in
  let d =
    Storage.Target.local_disk eng ~raw_rate:100e6 ~cached_rate:400e6 ~cache_bytes:100_000_000 ()
  in
  let first = Storage.Target.write d ~bytes:100_000_000 in
  let second = Storage.Target.write d ~bytes:100_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "second write hits the raw disk (%.2f vs %.2f)" first second)
    true
    (second > first *. 2.)

let test_cache_spillover_boundary () =
  (* one write straddling the remaining page cache: the cached prefix
     goes at cached_rate and the spill-over remainder at raw_rate,
     within a single booking *)
  let eng = engine () in
  let d =
    Storage.Target.local_disk eng ~raw_rate:100e6 ~cached_rate:400e6 ~cache_bytes:100_000_000 ()
  in
  let t = Storage.Target.write d ~bytes:150_000_000 in
  (* 100 MB @ 400 MB/s + 50 MB @ 100 MB/s *)
  check (Alcotest.float 1e-6) "split at the cache boundary" 0.75 t;
  check Alcotest.int "only the cached prefix is dirty" 100_000_000 (Storage.Target.dirty_bytes d);
  (* cache now exhausted: a later write is all raw, with no queueing *)
  Sim.Engine.advance eng ~delay:10.0;
  let t2 = Storage.Target.write d ~bytes:100_000_000 in
  check (Alcotest.float 1e-6) "subsequent writes all raw" 1.0 t2

let test_dirty_and_sync () =
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cache_bytes:1_000_000_000 () in
  ignore (Storage.Target.write d ~bytes:50_000_000);
  check Alcotest.int "dirty tracks cached bytes" 50_000_000 (Storage.Target.dirty_bytes d);
  let sync_t = Storage.Target.sync d in
  check (Alcotest.float 1e-6) "sync writes back at raw rate" 0.5 sync_t;
  check Alcotest.int "sync clears dirty" 0 (Storage.Target.dirty_bytes d)

let test_queue_serializes () =
  (* two concurrent writers to one device: the second completes later *)
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cache_bytes:0 () in
  let t1 = Storage.Target.write d ~bytes:100_000_000 in
  let t2 = Storage.Target.write d ~bytes:100_000_000 in
  Alcotest.(check bool) "second write waits for the first" true (t2 >= t1 +. 1.0 -. 1e-9)

let test_queue_frees_over_time () =
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cache_bytes:0 () in
  ignore (Storage.Target.write d ~bytes:100_000_000);
  (* a second write issued much later does not queue *)
  Sim.Engine.advance eng ~delay:10.0;
  let t = Storage.Target.write d ~bytes:100_000_000 in
  check (Alcotest.float 1e-6) "no queueing after the device drained" 1.0 t

let test_san_latency_and_rate () =
  let eng = engine () in
  let s = Storage.Target.san eng ~rate:400e6 ~latency:1e-3 () in
  let t = Storage.Target.write s ~bytes:400_000_000 in
  check (Alcotest.float 1e-6) "1 s transfer + 1 ms op latency" 1.001 t;
  check Alcotest.int "SAN has no local dirty pages" 0 (Storage.Target.dirty_bytes s)

let test_san_shared_between_clients () =
  (* the SAN cursor is shared: simultaneous writes from different nodes
     serialize on the aggregate bandwidth — this is what bends Figure 5b *)
  let eng = engine () in
  let s = Storage.Target.san eng ~rate:400e6 ~latency:0. () in
  let t1 = Storage.Target.write s ~bytes:400_000_000 in
  let t2 = Storage.Target.write s ~bytes:400_000_000 in
  Alcotest.(check bool) "aggregate bandwidth shared" true (t2 >= t1 +. 1.0 -. 1e-9)

let test_nfs_slower_than_san () =
  let eng = engine () in
  let san = Storage.Target.san eng ~rate:400e6 ~latency:0. () in
  let nfs = Storage.Target.nfs eng ~server_rate:70e6 ~backend:san () in
  let direct = Storage.Target.write san ~bytes:70_000_000 in
  Sim.Engine.advance eng ~delay:10.0;
  let via_nfs = Storage.Target.write nfs ~bytes:70_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "NFS path slower (%.3f vs %.3f)" via_nfs direct)
    true (via_nfs > direct *. 2.)

let test_nfs_clients_share_server_nic () =
  (* one NFS server, many clients: the server's NIC is a single
     resource, so concurrent writes from different clients queue on the
     aggregate server rate instead of each enjoying a private
     server_rate (and then also share the SAN behind it) *)
  let eng = engine () in
  let san = Storage.Target.san eng ~rate:400e6 ~latency:0. () in
  let nfs = Storage.Target.nfs eng ~server_rate:70e6 ~backend:san () in
  let t1 = Storage.Target.write nfs ~bytes:70_000_000 in
  let t2 = Storage.Target.write nfs ~bytes:70_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "second client queues on the server NIC (%.3f vs %.3f)" t1 t2)
    true
    (t2 >= t1 +. 1.0 -. 1e-9)

let test_cluster_shares_one_nfs_server () =
  (* the cluster's San_and_nfs config hands every NFS client the same
     server target — aggregate bandwidth is what bends Figure 5b *)
  let cl =
    Simos.Cluster.create ~nodes:4 ~storage:(Simos.Cluster.San_and_nfs { direct_nodes = 1 }) ()
  in
  Alcotest.(check bool) "clients mount the same server" true
    (Simos.Cluster.target cl 1 == Simos.Cluster.target cl 2);
  Alcotest.(check bool) "direct node talks to the SAN itself" true
    (Storage.Target.describe (Simos.Cluster.target cl 0) = "SAN")

let test_reset () =
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~raw_rate:100e6 ~cached_rate:400e6 ~cache_bytes:100_000_000 () in
  ignore (Storage.Target.write d ~bytes:100_000_000);
  Storage.Target.reset d;
  let t = Storage.Target.write d ~bytes:100_000_000 in
  Alcotest.(check bool) "cache free again after reset" true (t < 0.3);
  check Alcotest.int "dirty cleared by reset" 100_000_000 (Storage.Target.dirty_bytes d)

let test_read_rate () =
  let eng = engine () in
  let d = Storage.Target.local_disk eng ~read_rate:300e6 () in
  let t = Storage.Target.read d ~bytes:300_000_000 in
  check (Alcotest.float 1e-6) "300 MB at 300 MB/s" 1.0 t

let test_describe () =
  let eng = engine () in
  check Alcotest.string "disk" "local disk" (Storage.Target.describe (Storage.Target.local_disk eng ()));
  let san = Storage.Target.san eng () in
  check Alcotest.string "san" "SAN" (Storage.Target.describe san);
  check Alcotest.string "nfs" "NFS" (Storage.Target.describe (Storage.Target.nfs eng ~backend:san ()))

let () =
  Alcotest.run "storage"
    [
      ( "disk",
        [
          Alcotest.test_case "raw rate" `Quick test_disk_rate;
          Alcotest.test_case "cache absorbs" `Quick test_cache_absorbs_writes;
          Alcotest.test_case "cache fills" `Quick test_cache_fills_up;
          Alcotest.test_case "cache spill-over boundary" `Quick test_cache_spillover_boundary;
          Alcotest.test_case "dirty + sync" `Quick test_dirty_and_sync;
          Alcotest.test_case "queue serializes" `Quick test_queue_serializes;
          Alcotest.test_case "queue drains" `Quick test_queue_frees_over_time;
          Alcotest.test_case "read rate" `Quick test_read_rate;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "san-nfs",
        [
          Alcotest.test_case "latency and rate" `Quick test_san_latency_and_rate;
          Alcotest.test_case "shared cursor" `Quick test_san_shared_between_clients;
          Alcotest.test_case "nfs slower" `Quick test_nfs_slower_than_san;
          Alcotest.test_case "nfs clients share server nic" `Quick test_nfs_clients_share_server_nic;
          Alcotest.test_case "cluster shares one nfs server" `Quick test_cluster_shares_one_nfs_server;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
    ]
