(* The plugin/event-hook subsystem: registry semantics, option parsing,
   dispatch-order determinism, the golden hook-span sequence over a full
   checkpoint/restart cycle, and the ext-sock migration regression. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* registry *)

let test_registry_order () =
  Dmtcp.Plugins.ensure_registered ();
  let names () = List.map (fun (p : Plugin.t) -> p.Plugin.p_name) (Plugin.registered ()) in
  let first = names () in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " registered") true (List.mem n first))
    Dmtcp.Plugins.all_names;
  (* re-registration is positionally stable: the order cannot depend on
     how many times ensure_registered ran *)
  Dmtcp.Plugins.ensure_registered ();
  Dmtcp.Plugins.ensure_registered ();
  check Alcotest.(list string) "order stable across re-registration" first (names ())

let test_set_enabled_unknown_raises () =
  Dmtcp.Plugins.ensure_registered ();
  check Alcotest.bool "unknown plugin name rejected" true
    (try
       Plugin.set_enabled [ "ext-sock"; "no-such-plugin" ];
       false
     with Invalid_argument _ -> true);
  (* a rejected set must not have been half-applied *)
  Plugin.set_enabled [ "ext-sock" ];
  check Alcotest.(list string) "enabled set intact" [ "ext-sock" ] (Plugin.enabled_names ())

type Plugin.payload += Test_payload

let test_dispatch_registration_order () =
  Dmtcp.Plugins.ensure_registered ();
  let ran = ref [] in
  let fake name =
    {
      Plugin.p_name = name;
      p_doc = "test plugin";
      p_hooks = [ ("test-site", fun _ -> ran := name :: !ran) ];
    }
  in
  Plugin.register (fake "zz-test-a");
  Plugin.register (fake "aa-test-b");
  (* enablement order is the reverse of registration order: dispatch
     must follow registration order regardless *)
  Plugin.set_enabled [ "aa-test-b"; "zz-test-a" ];
  Plugin.dispatch ~now:0. "test-site" Test_payload;
  check Alcotest.(list string) "dispatch follows registration order"
    [ "zz-test-a"; "aa-test-b" ] (List.rev !ran);
  Plugin.set_enabled []

let test_site_counts () =
  Dmtcp.Plugins.ensure_registered ();
  let hits = ref 0 in
  Plugin.register
    { Plugin.p_name = "zz-test-c"; p_doc = "t"; p_hooks = [ ("count-site", fun _ -> incr hits) ] };
  Plugin.set_enabled [ "zz-test-c" ];
  Plugin.reset_counts ();
  for _ = 1 to 3 do
    Plugin.dispatch ~now:0. "count-site" Test_payload
  done;
  check Alcotest.(option int) "three dispatches counted" (Some 3)
    (List.assoc_opt "count-site" (Plugin.site_counts ()));
  check Alcotest.int "handler ran per dispatch" 3 !hits;
  Plugin.set_enabled []

(* ------------------------------------------------------------------ *)
(* option parsing: strict for the plugin knobs *)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_parse_plugins () =
  check Alcotest.(list string) "csv" [ "ext-sock"; "proc-fd" ]
    (Dmtcp.Options.parse_plugins "ext-sock,proc-fd");
  check Alcotest.(list string) "empty means none" [] (Dmtcp.Options.parse_plugins "");
  check Alcotest.(list string) "none means none" [] (Dmtcp.Options.parse_plugins "none");
  check Alcotest.bool "malformed name rejected" true
    (raises_invalid (fun () -> Dmtcp.Options.parse_plugins "ext-sock,Bad Name!"))

let test_parse_ports () =
  check Alcotest.(list int) "csv" [ 53; 389; 636 ] (Dmtcp.Options.parse_ports "53,389,636");
  check Alcotest.bool "non-numeric rejected" true
    (raises_invalid (fun () -> Dmtcp.Options.parse_ports "53,dns"));
  check Alcotest.bool "out-of-range rejected" true
    (raises_invalid (fun () -> Dmtcp.Options.parse_ports "70000"))

let test_of_getenv_bad_value_raises () =
  let env pairs k = List.assoc_opt k pairs in
  check Alcotest.bool "bad DMTCP_PLUGINS raises" true
    (raises_invalid (fun () ->
         Dmtcp.Options.of_getenv (env [ ("DMTCP_PLUGINS", "ext sock") ])));
  check Alcotest.bool "bad DMTCP_PLUGIN_BLACKLIST_PORTS raises" true
    (raises_invalid (fun () ->
         Dmtcp.Options.of_getenv (env [ ("DMTCP_PLUGIN_BLACKLIST_PORTS", "53,ldap") ])));
  let opts =
    Dmtcp.Options.of_getenv
      (env [ ("DMTCP_PLUGINS", "ext-sock,ext-shm"); ("DMTCP_PLUGIN_BLACKLIST_PORTS", "631") ])
  in
  check Alcotest.(list string) "good values parsed" [ "ext-sock"; "ext-shm" ]
    opts.Dmtcp.Options.plugins;
  check Alcotest.(list int) "good ports parsed" [ 631 ] opts.Dmtcp.Options.blacklist_ports

(* ------------------------------------------------------------------ *)
(* vfs path rewrite *)

let test_vfs_rewrite () =
  let vfs = Simos.Vfs.create () in
  let f = Simos.Vfs.open_or_create vfs "/proc/7/status" in
  Simos.Vfs.append f "pid:7\n";
  let swap p = if p = "/proc/7/status" then "/proc/9/status" else p in
  Simos.Vfs.with_rewrite vfs swap (fun () ->
      let g = Simos.Vfs.open_or_create vfs "/proc/7/status" in
      check Alcotest.string "open went to the rewritten path" "/proc/9/status"
        (Simos.Vfs.path_of g));
  (* hook restored on exit *)
  check Alcotest.bool "original path reachable again" true (Simos.Vfs.exists vfs "/proc/7/status");
  (* Fun.protect: restored even when the body raises *)
  (try Simos.Vfs.with_rewrite vfs swap (fun () -> failwith "boom") with Failure _ -> ());
  check Alcotest.bool "hook restored after an exception" true
    (Simos.Vfs.exists vfs "/proc/7/status")

(* ------------------------------------------------------------------ *)
(* golden hook-span sequence over a full checkpoint/restart cycle *)

module Common = Harness.Common

let plugin_spans events =
  List.filter_map
    (fun (e : Trace.event) ->
      if String.starts_with ~prefix:"plugin/" e.Trace.name then Some e.Trace.name else None)
    events

let all_on = { Dmtcp.Options.default with Dmtcp.Options.plugins = Dmtcp.Plugins.all_names }

(* the dns pair (port 53) under every built-in plugin: checkpoint, kill,
   restart, and a slice of the restarted run *)
let dns_cycle () =
  Chaos.Heuristic_progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:all_on () in
  ignore (Dmtcp.Api.launch env.Common.rt ~node:2 ~prog:"p:dnssrv" ~argv:[ "53" ]);
  Common.run_for env 0.3;
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:1 ~prog:"p:dnscli"
       ~argv:[ "2"; "53"; "1200"; "/data/tp_dns" ]);
  Common.run_for env 0.6;
  let col = Trace.collector () in
  Trace.with_sink (Trace.collector_sink col) (fun () ->
      Dmtcp.Api.checkpoint_now env.Common.rt;
      let script = Dmtcp.Api.restart_script env.Common.rt in
      Dmtcp.Api.kill_computation env.Common.rt;
      Dmtcp.Api.restart env.Common.rt script;
      Dmtcp.Api.await_restart env.Common.rt;
      Common.run_for env 0.3);
  Trace.events col

(* The exact span stream the cycle must produce — locked in as a golden:
   any change to hook placement, dispatch order, or the per-fd capture
   loop shows up as a diff here.  Sites appear in protocol order
   (drain-select at the drain stage, fd-capture per fd at the write
   stage, image-write per image, restart-rearrange per restored
   process); within one site, plugins fire in registration order. *)
let golden_spans =
  [
    "plugin/blacklist-ports/drain-select";
    "plugin/mpi-proxy/drain-select";
    "plugin/blacklist-ports/drain-select";
    "plugin/mpi-proxy/drain-select";
    "plugin/ext-shm/image-write";
    "plugin/blacklist-ports/fd-capture";
    "plugin/mpi-proxy/fd-capture";
    "plugin/blacklist-ports/fd-capture";
    "plugin/mpi-proxy/fd-capture";
    "plugin/ext-shm/image-write";
    "plugin/blacklist-ports/fd-capture";
    "plugin/mpi-proxy/fd-capture";
    "plugin/blacklist-ports/fd-capture";
    "plugin/mpi-proxy/fd-capture";
    "plugin/proc-fd/restart-rearrange";
    "plugin/mpi-proxy/restart-rearrange";
    "plugin/proc-fd/restart-rearrange";
    "plugin/mpi-proxy/restart-rearrange";
  ]

let test_golden_spans () =
  let got = plugin_spans (dns_cycle ()) in
  check Alcotest.(list string) "plugin span sequence matches the golden" golden_spans got

let test_spans_deterministic () =
  let a = plugin_spans (dns_cycle ()) in
  let b = plugin_spans (dns_cycle ()) in
  check Alcotest.(list string) "two cycles, identical span streams" a b

(* ------------------------------------------------------------------ *)
(* ext-sock migration regression: the inline external-peer dead-socket
   special case now lives in the ext-sock plugin; the restart must
   behave exactly as before the migration — same 5 s discovery wait,
   dead socket from the plugin hook — and produce deterministic images *)

let external_peer_cycle () =
  Chaos.Progs.ensure_registered ();
  let env = Common.setup ~nodes:4 ~cores_per_node:2 () in
  let cl = env.Common.cl in
  (* plain (unhijacked) server: survives kill_computation and is never
     part of the restart set *)
  ignore
    (Simos.Kernel.spawn (Simos.Cluster.kernel cl 1) ~prog:"p:stream-server"
       ~argv:[ "6000"; "200000"; "/tmp/xp" ] ());
  Common.run_for env 0.3;
  ignore
    (Dmtcp.Api.launch env.Common.rt ~node:2 ~prog:"p:stream-client"
       ~argv:[ "1"; "6000"; "200000" ]);
  Common.run_for env 0.3;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  let image_bytes =
    List.concat_map
      (fun (host, paths) ->
        List.map
          (fun path ->
            match Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel cl host)) path with
            | Some f -> Simos.Vfs.read_all f
            | None -> Alcotest.failf "image %s missing on node %d" path host)
          paths)
      script.Dmtcp.Restart_script.entries
    |> String.concat ""
  in
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Runtime.reset_stage_stats env.Common.rt;
  let col = Trace.collector () in
  Trace.with_sink (Trace.collector_sink col) (fun () ->
      Dmtcp.Api.restart env.Common.rt script;
      Dmtcp.Api.await_restart env.Common.rt);
  let reconnect_secs =
    match List.assoc_opt "restart/reconnect" (Dmtcp.Runtime.stage_stats env.Common.rt) with
    | Some s -> Util.Stats.mean s
    | None -> Alcotest.fail "restart/reconnect not recorded"
  in
  (image_bytes, plugin_spans (Trace.events col), reconnect_secs)

let test_ext_sock_migration () =
  let bytes_a, spans, reconnect = external_peer_cycle () in
  (* pre-migration behavior, now produced through the hook: the full
     discovery deadline, then a dead socket from ext-sock *)
  check Alcotest.bool
    (Printf.sprintf "discovery gave up at the 5 s deadline (got %.9f)" reconnect)
    true
    (Float.abs (reconnect -. 5.0) < 1e-6);
  check Alcotest.bool "ext-sock answered the discovery hook" true
    (List.mem "plugin/ext-sock/restart-discovery" spans);
  (* image byte-identity: a second identical run writes the same bytes *)
  let bytes_b, _, _ = external_peer_cycle () in
  check Alcotest.bool "checkpoint images byte-identical across runs" true (bytes_a = bytes_b);
  check Alcotest.bool "images non-trivial" true (String.length bytes_a > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "plugin"
    [
      ( "registry",
        [
          Alcotest.test_case "registration order stable" `Quick test_registry_order;
          Alcotest.test_case "unknown name rejected" `Quick test_set_enabled_unknown_raises;
          Alcotest.test_case "dispatch in registration order" `Quick
            test_dispatch_registration_order;
          Alcotest.test_case "site counts" `Quick test_site_counts;
        ] );
      ( "options",
        [
          Alcotest.test_case "parse_plugins" `Quick test_parse_plugins;
          Alcotest.test_case "parse_ports" `Quick test_parse_ports;
          Alcotest.test_case "bad env values raise" `Quick test_of_getenv_bad_value_raises;
        ] );
      ( "vfs-rewrite",
        [ Alcotest.test_case "with_rewrite scoping" `Quick test_vfs_rewrite ] );
      ( "hook-order",
        [
          Alcotest.test_case "golden span sequence (ckpt/restart cycle)" `Quick
            test_golden_spans;
          Alcotest.test_case "span stream deterministic" `Quick test_spans_deterministic;
        ] );
      ( "migration",
        [
          Alcotest.test_case "ext-sock reproduces the inline special case" `Quick
            test_ext_sock_migration;
        ] );
    ]
