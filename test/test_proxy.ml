(* The rank/proxy split: wire codec, eager neighbour-relation
   validation, mid-collective checkpoint/restart on both transports,
   direct-vs-proxy numerical identity, the drain-accounting conservation
   property, and the kill-mid-collective chaos scenarios. *)

let check = Alcotest.check

module Common = Harness.Common

let base_port = Common.base_port

(* ------------------------------------------------------------------ *)
(* wire codec *)

let frames =
  [
    Proxy.Wire.Hello { rank = 3; size = 8; rpn = 2 };
    Proxy.Wire.Welcome;
    Proxy.Wire.Data { src = 1; dst = 6; epoch = 0; seq = 42; tag = 'h'; payload = "halo-bytes" };
    Proxy.Wire.Ack { src = 6; dst = 1; epoch = 3; seq = 42 };
    Proxy.Wire.Deliver { src = 1; epoch = 1; seq = 7; tag = 'g'; payload = "" };
    Proxy.Wire.Ack_ind { src = 2; epoch = 0; seq = 9 };
  ]

let test_wire_roundtrip () =
  let bytes = String.concat "" (List.map Proxy.Wire.to_bytes frames) in
  let rec pop_all buf acc =
    match Proxy.Wire.pop buf with
    | Some (f, rest) -> pop_all rest (f :: acc)
    | None ->
      check Alcotest.int "no trailing bytes" 0 (String.length buf);
      List.rev acc
  in
  let got = pop_all bytes [] in
  Alcotest.(check bool) "frames survive the wire" true (got = frames)

let test_wire_partial () =
  let whole = Proxy.Wire.to_bytes (List.nth frames 2) in
  for cut = 0 to String.length whole - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "prefix of %d bytes is incomplete" cut)
      true
      (Proxy.Wire.pop (String.sub whole 0 cut) = None)
  done

(* ------------------------------------------------------------------ *)
(* neighbour-relation validation (no simulation) *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let invalid_with substrings f =
  try
    ignore (f ());
    false
  with Invalid_argument m -> List.for_all (fun s -> contains m s) substrings

let ring size r = List.filter (fun n -> n >= 0 && n < size) [ r - 1; r + 1 ]

let test_relation_asymmetric () =
  (* rank 1 lists rank 2; rank 2 does not list rank 1 *)
  let rel r = if r = 1 then [ 2 ] else [] in
  Alcotest.(check bool) "asymmetric relation rejected, naming both ranks" true
    (invalid_with [ "rank 1"; "rank 2" ] (fun () ->
         Apps.Mpi.create ~rank:0 ~size:4 ~base_port:6000 ~ranks_per_node:2 ~neighbors:rel ()))

let test_relation_out_of_range () =
  let rel r = if r = 3 then [ 4 ] else [] in
  Alcotest.(check bool) "out-of-range neighbour rejected" true
    (invalid_with [ "rank 3"; "neighbour 4" ] (fun () ->
         Apps.Mpi.create ~rank:0 ~size:4 ~base_port:6000 ~ranks_per_node:2 ~neighbors:rel ()))

let test_proxied_codec_roundtrip () =
  let comm =
    Apps.Mpi.create ~rank:2 ~size:8 ~base_port:6000 ~ranks_per_node:2
      ~transport:Apps.Mpi.Proxied ~neighbors:(ring 8) ()
  in
  Apps.Mpi.send comm ~dst:1 ~tag:'D' "payload-bytes";
  let comm' = Util.Codec.roundtrip Apps.Mpi.encode Apps.Mpi.decode comm in
  Alcotest.(check bool) "transport preserved" true
    (Apps.Mpi.transport comm' = Apps.Mpi.Proxied);
  check Alcotest.int "unacked bytes preserved" (Apps.Mpi.pending_out comm ~dst:1)
    (Apps.Mpi.pending_out comm' ~dst:1)

let test_transport_of_string () =
  Alcotest.(check bool) "direct" true (Apps.Mpi.transport_of_string "direct" = Apps.Mpi.Direct);
  Alcotest.(check bool) "proxy" true (Apps.Mpi.transport_of_string "proxy" = Apps.Mpi.Proxied);
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Apps.Mpi.transport_of_string "smoke-signals");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* end-to-end cycles *)

let output env ~node path =
  match
    Simos.Vfs.lookup (Simos.Kernel.vfs (Simos.Cluster.kernel env.Common.cl node)) path
  with
  | Some f -> Some (Simos.Vfs.read_all f)
  | None -> None

let run_until env ~deadline pred =
  while (not (pred ())) && Simos.Cluster.now env.Common.cl < deadline do
    Common.run_for env 0.05
  done

let proxy_options =
  { Dmtcp.Options.default with Dmtcp.Options.plugins = [ "ext-sock"; "mpi-proxy" ] }

let workload ~kind ~prog ~nprocs ~rpn ~extra =
  {
    Common.w_name = prog;
    w_kind = kind;
    w_prog = prog;
    w_nprocs = nprocs;
    w_rpn = rpn;
    w_extra = extra;
    w_warmup = 0.05;
  }

let result path env = output env ~node:0 path

(* run a workload to completion with no checkpoint; the reference
   bytes *)
let plain_run ~kind ~prog ~short ~nprocs ~rpn ~extra =
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:proxy_options () in
  Common.start_workload env (workload ~kind ~prog ~nprocs ~rpn ~extra);
  let path = Printf.sprintf "/result/%s-%d" short base_port in
  run_until env ~deadline:(Simos.Cluster.now env.Common.cl +. 120.) (fun () ->
      result path env <> None);
  let out = result path env in
  Common.teardown env;
  out

(* same workload, but checkpoint mid-run ([at] seconds after warmup),
   kill everything hijacked, restart from the images, and run out *)
let cycle_run ~kind ~prog ~short ~nprocs ~rpn ~extra ~at =
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes:4 ~cores_per_node:2 ~options:proxy_options () in
  Common.start_workload env (workload ~kind ~prog ~nprocs ~rpn ~extra);
  Common.run_for env at;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  let path = Printf.sprintf "/result/%s-%d" short base_port in
  run_until env ~deadline:(Simos.Cluster.now env.Common.cl +. 120.) (fun () ->
      result path env <> None);
  let out = result path env in
  let images = Chaos.Proxy_fault.image_stats env script in
  Common.teardown env;
  (out, images)

(* one straggling phase, 0.6 s long: a checkpoint 0.2 s in lands while
   the straggler computes and every other rank sits inside the
   allreduce with its gather message already in flight *)
let bsp_extra = [ "1"; "512"; "1"; "0.6" ]

(* the mpi.mli claim, on the direct backend: a checkpoint between
   [progress] steps of an in-flight [allreduce_sum] restores and
   completes with the right value *)
let test_direct_mid_allreduce_restart () =
  let reference =
    plain_run ~kind:Common.Direct ~prog:Apps.Stencil.bsp_prog ~short:"bsp" ~nprocs:8 ~rpn:2
      ~extra:("direct" :: bsp_extra)
  in
  let restarted, _ =
    cycle_run ~kind:Common.Direct ~prog:Apps.Stencil.bsp_prog ~short:"bsp" ~nprocs:8 ~rpn:2
      ~extra:("direct" :: bsp_extra) ~at:0.2
  in
  Alcotest.(check bool) "reference run completed" true (reference <> None);
  (match reference with
  | Some r -> Alcotest.(check bool) "reference verified" true (contains r "VERIFIED")
  | None -> ());
  Alcotest.(check bool) "collective completes with the right value after restart" true
    (restarted = reference)

(* the same claim on the proxy backend, plus the image-shape payoff:
   rank images carry no live socket and no drained bytes *)
let test_proxy_mid_allreduce_restart () =
  let reference =
    plain_run ~kind:Common.Proxy ~prog:Apps.Stencil.bsp_prog ~short:"bsp" ~nprocs:8 ~rpn:2
      ~extra:bsp_extra
  in
  let restarted, (estab, drained) =
    cycle_run ~kind:Common.Proxy ~prog:Apps.Stencil.bsp_prog ~short:"bsp" ~nprocs:8 ~rpn:2
      ~extra:bsp_extra ~at:0.2
  in
  Alcotest.(check bool) "proxy restart reproduces the reference" true (restarted = reference);
  check Alcotest.int "no established sockets in rank images" 0 estab;
  check Alcotest.int "no drained bytes in rank images" 0 drained

(* the tentpole acceptance check: identical numerical results on direct
   and proxy transports, compared as raw result-file bytes *)
let stencil_extra = [ "96"; "4"; "6"; "0.08" ]

let test_stencil_direct_vs_proxy () =
  let direct =
    plain_run ~kind:Common.Direct ~prog:Apps.Stencil.stencil_prog ~short:"stencil" ~nprocs:8
      ~rpn:2 ~extra:("direct" :: stencil_extra)
  in
  let proxied =
    plain_run ~kind:Common.Proxy ~prog:Apps.Stencil.stencil_prog ~short:"stencil" ~nprocs:8
      ~rpn:2 ~extra:stencil_extra
  in
  Alcotest.(check bool) "direct run completed" true (direct <> None);
  Alcotest.(check bool) "stencil bit-identical across transports" true (direct = proxied)

(* ------------------------------------------------------------------ *)
(* drain-accounting conservation (QCheck) *)

(* At any sampled instant: a destination cannot have accepted more than
   its sources sent, and every byte sent-but-not-yet-accepted is
   retained in some sender's resend buffer (proxy custody and wire
   bytes are disposable copies).  At quiesce every directed pair has
   sent = delivered: exactly-once delivery across the cycle. *)
let conservation_cycle (size, rpn, bytes, at_ticks) =
  (* QCheck shrinking walks int_range values toward 0, below the
     generator's lower bound — clamp so a shrink step cannot crash the
     harness (rpn = 0 divides) instead of refuting the property *)
  let size = max 2 size and rpn = max 1 rpn in
  let bytes = max 1 bytes and at_ticks = max 1 at_ticks in
  Proxy.Accounting.reset ~base_port;
  let env = Common.setup ~nodes:6 ~cores_per_node:2 ~options:proxy_options () in
  let violations = ref [] in
  let sample tag =
    let s, d, r = Proxy.Accounting.totals ~base_port in
    if d > s then violations := Printf.sprintf "%s: delivered %d > sent %d" tag d s :: !violations;
    if s - d > r then
      violations :=
        Printf.sprintf "%s: %d bytes in flight but only %d retained" tag (s - d) r :: !violations
  in
  Common.start_workload env
    (workload ~kind:Common.Proxy ~prog:Apps.Stencil.bsp_prog ~nprocs:size ~rpn
       ~extra:[ "4"; string_of_int bytes; "2"; "0.4" ]);
  for _ = 1 to at_ticks do
    Common.run_for env 0.05;
    sample "pre-ckpt"
  done;
  Dmtcp.Api.checkpoint_now env.Common.rt;
  let script = Dmtcp.Api.restart_script env.Common.rt in
  Dmtcp.Api.kill_computation env.Common.rt;
  Dmtcp.Api.restart env.Common.rt script;
  Dmtcp.Api.await_restart env.Common.rt;
  (* let every restored rank publish a fresh gauge before sampling: the
     rewind leaves receiver gauges ahead of sender gauges until both
     sides have stepped once *)
  Common.run_for env 0.05;
  let deadline = Simos.Cluster.now env.Common.cl +. 120. in
  while
    Dmtcp.Runtime.hijacked_processes env.Common.rt <> []
    && Simos.Cluster.now env.Common.cl < deadline
  do
    sample "post-restart";
    Common.run_for env 0.05
  done;
  (* quiesce: every rank exited; final gauges must balance per pair *)
  for src = 0 to size - 1 do
    for dst = 0 to size - 1 do
      let s, d, _ = Proxy.Accounting.pair ~base_port ~src ~dst in
      if s <> d then
        violations :=
          Printf.sprintf "quiesce: pair %d->%d sent %d delivered %d" src dst s d :: !violations
    done
  done;
  Common.teardown env;
  match !violations with
  | [] -> true
  | vs -> QCheck.Test.fail_reportf "conservation violated:@.%s" (String.concat "\n" vs)

let conservation_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:4
       ~name:"rank+proxy byte accounting conserved across a ckpt/restart cycle"
       QCheck.(quad (int_range 2 5) (int_range 1 2) (int_range 16 512) (int_range 1 6))
       conservation_cycle)

(* ------------------------------------------------------------------ *)
(* chaos: node crash mid-collective, bit-identical verdict *)

let test_chaos_mid_allreduce () =
  check
    Alcotest.(list string)
    "kill-mid-allreduce scenario clean" [] (Chaos.Proxy_fault.kill_mid_allreduce ())

let test_chaos_mid_halo () =
  check
    Alcotest.(list string)
    "kill-mid-halo scenario clean" [] (Chaos.Proxy_fault.kill_mid_halo ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "proxy"
    [
      ( "wire",
        [
          Alcotest.test_case "frame codec round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "partial frames stay buffered" `Quick test_wire_partial;
        ] );
      ( "relation",
        [
          Alcotest.test_case "asymmetric relation rejected eagerly" `Quick
            test_relation_asymmetric;
          Alcotest.test_case "out-of-range neighbour rejected" `Quick test_relation_out_of_range;
          Alcotest.test_case "proxied communicator codec round-trips" `Quick
            test_proxied_codec_roundtrip;
          Alcotest.test_case "transport_of_string" `Quick test_transport_of_string;
        ] );
      ( "collective-restart",
        [
          Alcotest.test_case "direct: ckpt mid-allreduce completes right" `Quick
            test_direct_mid_allreduce_restart;
          Alcotest.test_case "proxy: ckpt mid-allreduce, empty rank images" `Quick
            test_proxy_mid_allreduce_restart;
        ] );
      ( "transport-identity",
        [
          Alcotest.test_case "stencil identical on direct and proxy" `Quick
            test_stencil_direct_vs_proxy;
        ] );
      ("conservation", [ conservation_prop ]);
      ( "chaos",
        [
          Alcotest.test_case "node crash mid-allreduce" `Slow test_chaos_mid_allreduce;
          Alcotest.test_case "node crash mid-halo-exchange" `Slow test_chaos_mid_halo;
        ] );
    ]
